//! Hit/miss statistics for cache levels and the full hierarchy.

/// Counters for one cache level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit this level.
    pub hits: u64,
    /// Accesses that missed this level.
    pub misses: u64,
    /// Subset of `misses` classified as conflict misses (the fully
    /// associative shadow of the same capacity would have hit).
    pub conflict_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl LevelStats {
    /// Total accesses observed by this level.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when the level saw no traffic.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    /// Misses per kilo-*instruction* given an instruction count — the MPKI
    /// metric of the paper's hardware-counter study (Section 8).
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Accumulate another level's counters into this one (used to aggregate
    /// per-core statistics).
    pub fn merge(&mut self, other: &LevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.conflict_misses += other.conflict_misses;
        self.writebacks += other.writebacks;
    }

    /// The single place the counter invariants are checked: conflict misses
    /// are a subset of misses, and `accesses()` is *defined* as
    /// `hits + misses` (so aggregation can never desynchronize the three).
    ///
    /// # Panics
    /// Panics if `conflict_misses > misses`.
    pub fn assert_invariants(&self) {
        assert!(
            self.conflict_misses <= self.misses,
            "LevelStats invariant violated: conflict_misses {} > misses {}",
            self.conflict_misses,
            self.misses
        );
        debug_assert_eq!(self.accesses(), self.hits + self.misses);
    }
}

impl std::ops::Add for LevelStats {
    type Output = LevelStats;
    fn add(mut self, rhs: LevelStats) -> LevelStats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for LevelStats {
    fn add_assign(&mut self, rhs: LevelStats) {
        self.merge(&rhs);
    }
}

impl std::ops::Sub for LevelStats {
    type Output = LevelStats;
    /// Counter difference between two snapshots of the same (monotonically
    /// counting) level — the profiler's per-region deltas.
    fn sub(self, rhs: LevelStats) -> LevelStats {
        LevelStats {
            hits: self.hits - rhs.hits,
            misses: self.misses - rhs.misses,
            conflict_misses: self.conflict_misses - rhs.conflict_misses,
            writebacks: self.writebacks - rhs.writebacks,
        }
    }
}

/// Statistics for a whole [`crate::Hierarchy`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache counters.
    pub l1: LevelStats,
    /// L2 counters.
    pub l2: LevelStats,
    /// LLC counters.
    pub llc: LevelStats,
    /// Lines fetched from main memory.
    pub mem_fetches: u64,
}

impl HierarchyStats {
    /// Merge another hierarchy's statistics (per-core aggregation).
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.llc.merge(&other.llc);
        self.mem_fetches += other.mem_fetches;
    }

    /// Check every level's counter invariants (see
    /// [`LevelStats::assert_invariants`]).
    pub fn assert_invariants(&self) {
        self.l1.assert_invariants();
        self.l2.assert_invariants();
        self.llc.assert_invariants();
    }

    /// Scale all counters by an integer factor. Used when a simulated
    /// steady-state slice stands in for `k` identical slices (e.g. the
    /// remaining images of a minibatch share the warmed weight working set).
    pub fn scaled(&self, k: u64) -> HierarchyStats {
        let s = |l: &LevelStats| LevelStats {
            hits: l.hits * k,
            misses: l.misses * k,
            conflict_misses: l.conflict_misses * k,
            writebacks: l.writebacks * k,
        };
        HierarchyStats {
            l1: s(&self.l1),
            l2: s(&self.l2),
            llc: s(&self.llc),
            mem_fetches: self.mem_fetches * k,
        }
    }
}

impl std::ops::Add for HierarchyStats {
    type Output = HierarchyStats;
    fn add(mut self, rhs: HierarchyStats) -> HierarchyStats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for HierarchyStats {
    fn add_assign(&mut self, rhs: HierarchyStats) {
        self.merge(&rhs);
    }
}

impl std::ops::Sub for HierarchyStats {
    type Output = HierarchyStats;
    fn sub(self, rhs: HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1 - rhs.l1,
            l2: self.l2 - rhs.l2,
            llc: self.llc - rhs.llc,
            mem_fetches: self.mem_fetches - rhs.mem_fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_and_mpki() {
        let l = LevelStats {
            hits: 900,
            misses: 100,
            conflict_misses: 40,
            writebacks: 0,
        };
        assert!((l.miss_ratio() - 0.1).abs() < 1e-12);
        assert!((l.mpki(50_000) - 2.0).abs() < 1e-12);
        assert_eq!(l.accesses(), 1000);
    }

    #[test]
    fn empty_stats_are_zero() {
        let l = LevelStats::default();
        assert_eq!(l.miss_ratio(), 0.0);
        assert_eq!(l.mpki(0), 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = HierarchyStats::default();
        a.l1.hits = 10;
        a.l1.misses = 2;
        let mut b = HierarchyStats::default();
        b.l1.hits = 5;
        b.l1.conflict_misses = 1;
        b.mem_fetches = 7;
        a.merge(&b);
        assert_eq!(a.l1.hits, 15);
        assert_eq!(a.l1.conflict_misses, 1);
        assert_eq!(a.mem_fetches, 7);
        let c = a.scaled(3);
        assert_eq!(c.l1.hits, 45);
        assert_eq!(c.mem_fetches, 21);
    }

    #[test]
    fn add_matches_merge_and_sub_inverts() {
        let mut a = HierarchyStats::default();
        a.l1.hits = 10;
        a.l1.misses = 4;
        a.l1.conflict_misses = 2;
        a.l2.writebacks = 3;
        a.mem_fetches = 5;
        let mut b = HierarchyStats::default();
        b.l1.hits = 1;
        b.llc.misses = 9;
        b.mem_fetches = 2;

        let mut merged = a;
        merged.merge(&b);
        assert_eq!(a + b, merged);

        let mut acc = a;
        acc += b;
        assert_eq!(acc, merged);

        assert_eq!(merged - b, a);
        assert_eq!(merged - a, b);
        merged.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn invariant_catches_conflict_overflow() {
        let l = LevelStats {
            hits: 0,
            misses: 1,
            conflict_misses: 2,
            writebacks: 0,
        };
        l.assert_invariants();
    }
}
