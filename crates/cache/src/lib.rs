//! # lsv-cache — set-associative cache hierarchy simulator
//!
//! Models the memory system of the evaluation platform (paper Section 7):
//! per-core L1D and L2, a shared banked LLC, and main memory. The simulator
//! is *trace-driven by real addresses*: the convolution kernels in
//! `lsv-conv` run over tensors placed in a flat simulated address space, so
//! the cache conflict misses that the paper analyses (Section 5.2) emerge
//! from the actual blocked memory layouts rather than from a hand-wired
//! penalty.
//!
//! Features:
//!
//! * [`SetAssocCache`] — LRU set-associative cache with write-back /
//!   write-allocate semantics and per-level hit/miss statistics.
//! * **Conflict-miss classification** (Hill & Smith, ref. 13 in the paper's
//!   bibliography): each level can carry a same-capacity fully-associative
//!   LRU *shadow*; a miss in the set-associative array that hits in the
//!   shadow is a conflict miss — it would have been avoided by full
//!   associativity. This is how the MPKI study distinguishes the paper's
//!   "conflict" misses from capacity misses.
//! * [`Hierarchy`] — a three-level inclusive hierarchy returning the level
//!   serviced and its load-to-use latency.
//! * [`banks`] — the LLC line-interleaved banking model used to reproduce
//!   the gather/scatter serialization behaviour of Section 8 (`bwdw` pass).

pub mod banks;
pub mod hierarchy;
pub mod set_assoc;
pub mod stats;

pub use banks::bank_of_line;
pub use hierarchy::{shared_llc, AccessOutcome, Hierarchy, Level, SharedLlc};
pub use set_assoc::{SetAssocCache, ShadowLru};
pub use stats::{HierarchyStats, LevelStats};
