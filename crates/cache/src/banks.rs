//! The LLC banking model (paper Section 7/8).
//!
//! The SX-Aurora LLC interleaves 128-byte cache lines over 16 memory banks so
//! that unit-stride vector loads touch consecutive lines in parallel.
//! Gather/scatter instructions enjoy the same parallelism *only* when the
//! gathered blocks map to distinct banks; when the block stride is a multiple
//! of `banks * line` every block lands in the same bank and the transfer
//! serializes — the effect that makes MBDC slow on early-layer `bwdw`
//! (Section 8) and fast on the 14x14/7x7 layers where the mapping is
//! (close to) bijective.

use lsv_arch::LlcBanking;

/// Bank that services a given byte address under line interleaving.
#[inline]
pub fn bank_of_line(addr: u64, line_bytes: usize, banks: usize) -> usize {
    ((addr / line_bytes as u64) % banks as u64) as usize
}

/// Serialization factor of a gather touching `line_addrs`: the maximum number
/// of lines that any single bank must serve. 1 means fully parallel
/// (bijective mapping); `line_addrs.len()` means fully serialized.
///
/// ```
/// use lsv_arch::LlcBanking;
/// use lsv_cache::banks::gather_serialization;
/// let b = LlcBanking { banks: 16, service_cycles: 4 };
/// // 16-line stride: every block lands in the same bank (the 56x56 bwdw case).
/// let same_bank = (0..16u64).map(|i| i * 16 * 128);
/// assert_eq!(gather_serialization(same_bank, 128, &b), 16);
/// // 49-line stride is coprime with 16 banks: fully parallel.
/// let bijective = (0..16u64).map(|i| i * 49 * 128);
/// assert_eq!(gather_serialization(bijective, 128, &b), 1);
/// ```
pub fn gather_serialization(
    line_addrs: impl IntoIterator<Item = u64>,
    line_bytes: usize,
    banking: &LlcBanking,
) -> u64 {
    let mut counts = vec![0u64; banking.banks];
    for a in line_addrs {
        counts[bank_of_line(a, line_bytes, banking.banks)] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

/// Cycles the LLC needs to deliver a gather of `line_addrs` once the request
/// arrives: the serialization factor times the per-line service time.
pub fn gather_service_cycles(
    line_addrs: impl IntoIterator<Item = u64>,
    line_bytes: usize,
    banking: &LlcBanking,
) -> u64 {
    gather_serialization(line_addrs, line_bytes, banking) * banking.service_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: usize = 128;

    fn banking() -> LlcBanking {
        LlcBanking {
            banks: 16,
            service_cycles: 4,
        }
    }

    #[test]
    fn consecutive_lines_hit_distinct_banks() {
        let addrs: Vec<u64> = (0..16).map(|i| i * LINE as u64).collect();
        assert_eq!(gather_serialization(addrs, LINE, &banking()), 1);
    }

    #[test]
    fn stride_multiple_of_banks_serializes() {
        // Block stride = 16 lines * 128B: all 16 blocks land in bank 0.
        // This is the 56x56 MBDC bwdw case: OH*OW*N_cline bytes is a
        // multiple of banks*line.
        let stride = (16 * LINE) as u64;
        let addrs: Vec<u64> = (0..16).map(|i| i * stride).collect();
        assert_eq!(gather_serialization(addrs, LINE, &banking()), 16);
        assert_eq!(
            gather_service_cycles((0..16).map(|i| i * stride), LINE, &banking()),
            64
        );
    }

    #[test]
    fn odd_stride_is_bijective() {
        // 49-line stride (the 7x7 layers): gcd(49, 16) = 1 -> bijective.
        let stride = (49 * LINE) as u64;
        let addrs: Vec<u64> = (0..16).map(|i| i * stride).collect();
        assert_eq!(gather_serialization(addrs, LINE, &banking()), 1);
    }

    #[test]
    fn partial_conflict_stride() {
        // 196-line stride (14x14 layers): 196 mod 16 = 4 -> 4 banks, 4 each.
        let stride = (196 * LINE) as u64;
        let addrs: Vec<u64> = (0..16).map(|i| i * stride).collect();
        assert_eq!(gather_serialization(addrs, LINE, &banking()), 4);
    }

    #[test]
    fn empty_gather_is_free() {
        assert_eq!(
            gather_serialization(std::iter::empty(), LINE, &banking()),
            0
        );
    }
}
