//! A three-level cache hierarchy (L1D -> L2 -> LLC -> memory).
//!
//! The hierarchy is mostly-inclusive and write-allocate at every level. Each
//! access walks down until it finds the line, allocating it in every level on
//! the way back up, and reports the level that serviced the request together
//! with its load-to-use latency.

use crate::set_assoc::SetAssocCache;
use crate::stats::HierarchyStats;
use lsv_arch::ArchParams;
use std::cell::RefCell;
use std::rc::Rc;

/// A last-level cache that can be private to one core or shared between
/// the simulated cores of a chip (the SX-Aurora LLC is physically shared;
/// `lsv_conv::multicore` exploits this for the detailed multi-core model).
pub type SharedLlc = Rc<RefCell<SetAssocCache>>;

/// Create a shareable LLC for `arch` (full capacity).
pub fn shared_llc(arch: &ArchParams) -> SharedLlc {
    Rc::new(RefCell::new(SetAssocCache::new(arch.llc, false)))
}

/// The memory level that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// Last-level cache hit.
    Llc,
    /// Serviced by main memory.
    Mem,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The level that serviced the request.
    pub level: Level,
    /// Load-to-use latency in cycles for that level.
    pub latency: u64,
    /// The L1 miss (if any) was a conflict miss.
    pub l1_conflict: bool,
}

/// Per-core cache hierarchy.
///
/// The LLC is physically shared between cores on the modelled machine; the
/// multi-core scheduler in `lsv-conv` simulates one representative core and
/// treats its LLC occupancy as that core's fair share (see DESIGN.md for the
/// approximation note). `llc_shared_fraction` shrinks the private LLC model
/// accordingly when more than one core is active.
#[derive(Debug)]
pub struct Hierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SharedLlc,
    lat: lsv_arch::MemLatencies,
    line: u64,
    /// Next-line prefetch degree of the scalar L1 (0 disables).
    prefetch_degree: u64,
}

impl Hierarchy {
    /// Build a hierarchy for one core of `arch`, with the LLC capacity
    /// divided by `llc_share` (1 = whole LLC; `arch.cores` = fair share when
    /// all cores are active).
    pub fn for_core(arch: &ArchParams, llc_share: usize) -> Self {
        assert!(llc_share >= 1, "llc_share must be at least 1");
        let mut llc_geom = arch.llc;
        if llc_share > 1 {
            // Shrink capacity by reducing the number of sets, keeping
            // associativity and line size (a reasonable model of competitive
            // sharing among symmetric cores).
            let shrunk = (arch.llc.size / llc_share).max(arch.llc.line * arch.llc.ways);
            // Round down to a multiple of line*ways so the geometry stays valid.
            let quantum = arch.llc.line * arch.llc.ways;
            llc_geom = lsv_arch::CacheGeometry::new(
                shrunk / quantum * quantum,
                arch.llc.line,
                arch.llc.ways,
            );
        }
        Self {
            l1: SetAssocCache::new(arch.l1d, true),
            l2: SetAssocCache::new(arch.l2, false),
            llc: Rc::new(RefCell::new(SetAssocCache::new(llc_geom, false))),
            lat: arch.lat,
            line: arch.l1d.line as u64,
            prefetch_degree: 2,
        }
    }

    /// Build a per-core hierarchy whose LLC is the given shared instance
    /// (full-capacity, physically shared between cores).
    pub fn for_core_with_llc(arch: &ArchParams, llc: SharedLlc) -> Self {
        Self {
            l1: SetAssocCache::new(arch.l1d, true),
            l2: SetAssocCache::new(arch.l2, false),
            llc,
            lat: arch.lat,
            line: arch.l1d.line as u64,
            prefetch_degree: 2,
        }
    }

    /// Disable or change the scalar L1 next-line prefetch degree (used by
    /// the prefetcher ablation bench).
    pub fn set_prefetch_degree(&mut self, degree: u64) {
        self.prefetch_degree = degree;
    }

    /// Access one line. `write` marks it dirty in L1 (write-back propagation
    /// of dirty evictions between levels is tracked as writeback counts, not
    /// as extra latency — see DESIGN.md).
    pub fn access_line(&mut self, addr: u64, write: bool) -> AccessOutcome {
        let r1 = self.l1.access_line(addr, write);
        if r1.hit {
            if r1.first_hit_on_prefetch {
                // Stream continuation: keep the prefetcher ahead of a
                // sequential/short-stride stream.
                self.issue_prefetches(addr);
            }
            return AccessOutcome {
                level: Level::L1,
                latency: self.lat.l1,
                l1_conflict: false,
            };
        }
        let l1_conflict = r1.conflict;
        // Hardware next-line prefetch: a demand miss trains a fill of the
        // following line(s) into every level, silently (no demand stats).
        self.issue_prefetches(addr);
        let r2 = self.l2.access_line(addr, false);
        if r2.hit {
            return AccessOutcome {
                level: Level::L2,
                latency: self.lat.l2,
                l1_conflict,
            };
        }
        let r3 = self.llc.borrow_mut().access_line(addr, false);
        if r3.hit {
            return AccessOutcome {
                level: Level::Llc,
                latency: self.lat.llc,
                l1_conflict,
            };
        }
        AccessOutcome {
            level: Level::Mem,
            latency: self.lat.mem,
            l1_conflict,
        }
    }

    /// Insert a line into the LLC only, silently (benchmark warm-up).
    pub fn warm_llc_line(&mut self, addr: u64) {
        self.llc.borrow_mut().insert_silent(addr);
    }

    /// Fill the next `prefetch_degree` lines into every level, silently.
    fn issue_prefetches(&mut self, addr: u64) {
        for d in 1..=self.prefetch_degree {
            let pf = addr + d * self.line;
            self.l1.insert_silent(pf);
            self.l2.insert_silent(pf);
            self.llc.borrow_mut().insert_silent(pf);
        }
    }

    /// Probe the LLC only (used by the banked-gather model: gathers bypass
    /// the scalar L1/L2 on the modelled machine and are serviced by the LLC,
    /// as on SX-Aurora where vector memory instructions talk to the LLC
    /// directly).
    pub fn access_line_llc(&mut self, addr: u64, write: bool) -> AccessOutcome {
        let r = self.llc.borrow_mut().access_line(addr, write);
        if r.hit {
            AccessOutcome {
                level: Level::Llc,
                latency: self.lat.llc,
                l1_conflict: false,
            }
        } else {
            AccessOutcome {
                level: Level::Mem,
                latency: self.lat.mem,
                l1_conflict: false,
            }
        }
    }

    /// Access every line overlapped by `[addr, addr + bytes)` against the
    /// LLC (vector-traffic path, same semantics as calling
    /// [`Hierarchy::access_line_llc`] per line) and return the worst
    /// single-line latency plus the number of lines that missed to memory.
    ///
    /// Borrows the shared LLC cell once for the whole range instead of once
    /// per line — on unit-stride vector loads this is the hottest loop in
    /// the simulator.
    pub fn access_range_llc(&mut self, addr: u64, bytes: u64, write: bool) -> (u64, u64) {
        if bytes == 0 {
            return (0, 0);
        }
        let mut llc = self.llc.borrow_mut();
        let mut worst = 0u64;
        let mut mem_lines = 0u64;
        self.walk_range(
            &mut llc,
            addr,
            bytes,
            write,
            &mut worst,
            &mut mem_lines,
            None,
        );
        (worst, mem_lines)
    }

    /// Strided LLC walk: touch the line under each of `count` elements spaced
    /// `stride_bytes` apart, skipping an element whose line equals the
    /// immediately preceding element's line (sub-line strides touch each line
    /// once per run, matching a per-element walk with consecutive-line
    /// deduplication). Returns the worst latency and memory line count.
    pub fn access_strided_llc(
        &mut self,
        addr: u64,
        stride_bytes: u64,
        count: usize,
        write: bool,
    ) -> (u64, u64) {
        let line = self.line;
        let mut llc = self.llc.borrow_mut();
        let mut worst = 0u64;
        let mut mem_lines = 0u64;
        let mut last_line = u64::MAX;
        for i in 0..count {
            let a = (addr + i as u64 * stride_bytes) & !(line - 1);
            if a != last_line {
                let r = llc.access_line(a, write);
                worst = worst.max(if r.hit { self.lat.llc } else { self.lat.mem });
                if !r.hit {
                    mem_lines += 1;
                }
                last_line = a;
            }
        }
        (worst, mem_lines)
    }

    /// Gather/scatter LLC walk: touch every line of each `[b, b + block_bytes)`
    /// block, appending each touched line address to `lines` (the caller feeds
    /// them to the bank-serialization model). Returns the worst latency and
    /// memory line count.
    pub fn access_blocks_llc(
        &mut self,
        blocks: &[u64],
        block_bytes: u64,
        write: bool,
        lines: &mut Vec<u64>,
    ) -> (u64, u64) {
        let mut llc = self.llc.borrow_mut();
        let mut worst = 0u64;
        let mut mem_lines = 0u64;
        for &b in blocks {
            self.walk_range(
                &mut llc,
                b,
                block_bytes,
                write,
                &mut worst,
                &mut mem_lines,
                Some(lines),
            );
        }
        (worst, mem_lines)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_range(
        &self,
        llc: &mut SetAssocCache,
        addr: u64,
        bytes: u64,
        write: bool,
        worst: &mut u64,
        mem_lines: &mut u64,
        mut lines: Option<&mut Vec<u64>>,
    ) {
        if bytes == 0 {
            return;
        }
        let line = self.line;
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut a = first;
        loop {
            let r = llc.access_line(a, write);
            *worst = (*worst).max(if r.hit { self.lat.llc } else { self.lat.mem });
            if !r.hit {
                *mem_lines += 1;
            }
            if let Some(ls) = lines.as_deref_mut() {
                ls.push(a);
            }
            if a == last {
                break;
            }
            a += line;
        }
    }

    /// Silently fill every line of `[addr, addr + bytes)` into the LLC
    /// (benchmark warm-up), borrowing the shared cell once.
    pub fn warm_llc_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let line = self.line;
        let mut llc = self.llc.borrow_mut();
        let mut a = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        loop {
            llc.insert_silent(a);
            if a == last {
                break;
            }
            a += line;
        }
    }

    /// Snapshot of per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        let llc = self.llc.borrow().stats();
        HierarchyStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            llc,
            mem_fetches: llc.misses,
        }
    }

    /// Reset statistics, keeping contents (steady-state measurement).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.borrow_mut().reset_stats();
    }

    /// Drop contents and statistics (cold start).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.borrow_mut().flush();
    }

    /// The L1 line size in bytes (used by callers to split ranges).
    pub fn line_bytes(&self) -> usize {
        self.l1.geometry().line
    }

    /// Latency of a given level under this hierarchy's timing parameters.
    pub fn latency_of(&self, level: Level) -> u64 {
        match level {
            Level::L1 => self.lat.l1,
            Level::L2 => self.lat.l2,
            Level::Llc => self.lat.llc,
            Level::Mem => self.lat.mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    #[test]
    fn miss_walks_down_then_hits_up() {
        let arch = sx_aurora();
        let mut h = Hierarchy::for_core(&arch, 1);
        let first = h.access_line(0x1000, false);
        assert_eq!(first.level, Level::Mem);
        assert_eq!(first.latency, arch.lat.mem);
        let second = h.access_line(0x1000, false);
        assert_eq!(second.level, Level::L1);
        assert_eq!(second.latency, arch.lat.l1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let arch = sx_aurora();
        let mut h = Hierarchy::for_core(&arch, 1);
        // Fill one L1 set (2 ways, 32KB stride) with 3 lines, then revisit.
        h.access_line(0, false);
        h.access_line(32 * 1024, false);
        h.access_line(64 * 1024, false);
        let r = h.access_line(0, false);
        assert_eq!(r.level, Level::L2, "L1 conflict victim still in L2");
        assert!(r.l1_conflict);
    }

    #[test]
    fn llc_share_shrinks_capacity() {
        let arch = sx_aurora();
        let h8 = Hierarchy::for_core(&arch, 8);
        let h1 = Hierarchy::for_core(&arch, 1);
        assert!(
            h8.llc.borrow().geometry().size
                <= h1.llc.borrow().geometry().size / 8 + arch.llc.line * arch.llc.ways
        );
        assert_eq!(h8.llc.borrow().geometry().ways, arch.llc.ways);
    }

    #[test]
    fn stats_mem_fetches_match_llc_misses() {
        let arch = sx_aurora();
        let mut h = Hierarchy::for_core(&arch, 1);
        h.set_prefetch_degree(0);
        for i in 0..100u64 {
            h.access_line(i * 128, false);
        }
        let s = h.stats();
        assert_eq!(s.mem_fetches, 100);
        assert_eq!(s.l1.misses, 100);
    }

    #[test]
    fn next_line_prefetch_hides_sequential_stream() {
        let arch = sx_aurora();
        let mut h = Hierarchy::for_core(&arch, 1);
        for i in 0..99u64 {
            h.access_line(i * 128, false);
        }
        let s = h.stats();
        // Degree-2 next-line prefetch with stream continuation: a sequential
        // stream misses only on its very first line.
        assert_eq!(s.l1.misses, 1, "prefetched stream misses once");
        // A 3-line-stride stream defeats the degree-2 prefetcher entirely.
        let mut h2 = Hierarchy::for_core(&arch, 1);
        for i in 0..50u64 {
            h2.access_line(0x100_0000 + i * 3 * 128, false);
        }
        assert_eq!(h2.stats().l1.misses, 50);
    }

    #[test]
    fn range_llc_matches_per_line_walk() {
        let arch = sx_aurora();
        let mut bulk = Hierarchy::for_core(&arch, 1);
        let mut step = Hierarchy::for_core(&arch, 1);
        // Mixed unaligned ranges, re-touches and a write pass.
        let ranges = [
            (0x2000u64, 1024u64, false),
            (0x2040, 300, false), // re-hits, unaligned start
            (0x9f00, 33, true),   // straddles a line boundary
            (0x2000, 4096, false),
            (0x2000, 0, false), // empty range is free
        ];
        for &(addr, bytes, write) in &ranges {
            let (worst, mem_lines) = bulk.access_range_llc(addr, bytes, write);
            let mut want_worst = 0;
            let mut want_mem = 0;
            if bytes > 0 {
                let line = arch.l1d.line as u64;
                let mut a = addr & !(line - 1);
                let last = (addr + bytes - 1) & !(line - 1);
                loop {
                    let o = step.access_line_llc(a, write);
                    want_worst = want_worst.max(o.latency);
                    if o.level == Level::Mem {
                        want_mem += 1;
                    }
                    if a == last {
                        break;
                    }
                    a += line;
                }
            }
            assert_eq!((worst, mem_lines), (want_worst, want_mem));
        }
        assert_eq!(bulk.stats(), step.stats());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let arch = sx_aurora();
        let mut h = Hierarchy::for_core(&arch, 1);
        h.access_line(0, false);
        h.reset_stats();
        assert_eq!(h.stats().l1.accesses(), 0);
        assert_eq!(h.access_line(0, false).level, Level::L1);
    }
}
