//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be resolved. This crate implements the small API subset the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`/`sample_size`/`throughput`, and
//! `Bencher::iter`/`iter_batched` — as a plain wall-clock runner that
//! prints a median time per iteration. There is no statistical analysis,
//! no warm-up modelling and no HTML report; the point is that `cargo
//! bench` keeps exercising every pipeline end to end.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Cap applied to every sample count when `LSV_BENCH_SMOKE` is set in the
/// environment. CI runs benches in this mode: one timed sample per
/// benchmark proves the pipeline still compiles and runs without paying
/// for statistically meaningful timings.
fn smoke_cap() -> Option<usize> {
    std::env::var("LSV_BENCH_SMOKE")
        .ok()
        .map(|v| v.parse::<usize>().ok().filter(|&n| n > 0).unwrap_or(1))
}

fn effective_samples(requested: usize) -> usize {
    match smoke_cap() {
        Some(cap) => requested.min(cap),
        None => requested,
    }
}

/// Top-level bench context handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.param);
        run_one(&name, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Build an id from the parameter's display form.
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId {
            param: p.to_string(),
        }
    }

    /// Build an id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, p: P) -> Self {
        BenchmarkId {
            param: format!("{function}/{p}"),
        }
    }
}

/// Units of work per iteration (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps alive (irrelevant here).
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing handle passed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    timings_ns: Vec<u128>,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.timings_ns.push(t0.elapsed().as_nanos());
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: effective_samples(samples),
        timings_ns: Vec::new(),
    };
    f(&mut b);
    if b.timings_ns.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    b.timings_ns.sort_unstable();
    let median = b.timings_ns[b.timings_ns.len() / 2];
    println!(
        "bench {name}: median {median} ns/iter over {} samples",
        b.timings_ns.len()
    );
}

/// Collect bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 10);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(1));
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &x| {
            b.iter_batched(|| x, |v| seen += v, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(seen, 21);
    }
}
