//! Property tests for the blocked tensor layouts: every layout is a
//! bijection between logical coordinates and distinct addresses, and the
//! NCHW/OIHW import/export round-trips for arbitrary shapes and block sizes.

use lsv_tensor::{ActTensor, ActivationLayout, WeiTensor, WeightLayout};
use lsv_vengine::Arena;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn activation_roundtrip(
        n in 1usize..3,
        c in 1usize..40,
        h in 1usize..8,
        w in 1usize..8,
        cb in 1usize..40,
    ) {
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, n, c, h, w, ActivationLayout { cb });
        let data: Vec<f32> = (0..t.elems()).map(|i| i as f32 + 0.5).collect();
        t.store_nchw(&mut arena, &data);
        prop_assert_eq!(t.load_nchw(&arena), data);
    }

    #[test]
    fn activation_addresses_are_distinct_and_in_bounds(
        c in 1usize..24,
        h in 1usize..6,
        w in 1usize..6,
        cb in 1usize..24,
    ) {
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, 1, c, h, w, ActivationLayout { cb });
        let mut seen = std::collections::HashSet::new();
        let end = t.base + (t.elems_padded() * 4) as u64;
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let a = t.at(0, ci, y, x);
                    prop_assert!(a >= t.base && a < end, "address out of allocation");
                    prop_assert!(a.is_multiple_of(4));
                    prop_assert!(seen.insert(a), "aliasing at ({ci},{y},{x})");
                }
            }
        }
    }

    #[test]
    fn weight_roundtrip(
        oc in 1usize..24,
        ic in 1usize..24,
        k in 1usize..4,
        icb in 1usize..24,
        ocb in 1usize..24,
    ) {
        let mut arena = Arena::new();
        let t = WeiTensor::alloc(&mut arena, oc, ic, k, k, WeightLayout { icb, ocb });
        let data: Vec<f32> = (0..t.elems()).map(|i| (i as f32).sin()).collect();
        t.store_oihw(&mut arena, &data);
        prop_assert_eq!(t.load_oihw(&arena), data);
    }

    #[test]
    fn weight_oc_vector_is_contiguous(
        oc in 2usize..33,
        ic in 1usize..9,
        ocb in 2usize..33,
    ) {
        let mut arena = Arena::new();
        let t = WeiTensor::alloc(&mut arena, oc, ic, 1, 1, WeightLayout { icb: 1, ocb });
        // Within one OC block, consecutive output channels are adjacent —
        // the invariant the micro-kernel's weights vector load relies on.
        for blk in 0..t.oc_blocks() {
            let base = t.oc_vector_at(blk, 0, 0, 0);
            let in_block = ocb.min(oc - blk * ocb);
            for j in 0..in_block {
                prop_assert_eq!(t.at(blk * ocb + j, 0, 0, 0), base + (j * 4) as u64);
            }
        }
    }

    #[test]
    fn block_at_matches_first_channel(
        c in 1usize..40,
        cb in 1usize..40,
        h in 1usize..5,
        w in 1usize..5,
    ) {
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, 1, c, h, w, ActivationLayout { cb });
        for blk in 0..t.c_blocks() {
            let ch = blk * cb;
            if ch < c {
                prop_assert_eq!(t.block_at(0, blk, h - 1, w - 1), t.at(0, ch, h - 1, w - 1));
            }
        }
    }
}
