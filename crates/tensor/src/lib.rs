//! # lsv-tensor — rank-4 tensors and blocked memory layouts
//!
//! The paper's algorithms are defined as much by their *memory layouts* as by
//! their loop nests (Sections 4.2, 6.1, 6.3). This crate provides:
//!
//! * [`ActTensor`] — activation tensors `(N, C, H, W)` stored in the blocked
//!   layout `(N, C/C_b, H, W, C_b)` of Figure 1. The block factor `C_b` is a
//!   runtime parameter:
//!   - `C_b = min(C, N_vlen)` — the state-of-the-art / DC / BDC layout,
//!   - `C_b = N_cline` — the MBDC multi-block layout (Section 6.3),
//!   - `C_b = 1` — plain NCHW (used by the vednn baseline).
//! * [`WeiTensor`] — weight tensors `(OC, IC, KH, KW)` stored as
//!   `(OC/OC_b, IC/IC_b, KH, KW, IC_b, OC_b)`, including the *loop-resized*
//!   variant `(OC/OC_b, IC/N_cline, KH, KW, N_cline, OC_b)` of Section 6.1.
//! * NCHW/OIHW conversion for validation against the naive reference.
//!
//! Tensors do not own their storage: data lives in an
//! [`lsv_vengine::Arena`] so the cache simulator sees real addresses.

use lsv_vengine::Arena;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;

/// Activation memory layout: channel-blocked `(N, C/cb, H, W, cb)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationLayout {
    /// Channel block size (`IC_b` / `OC_b` in the paper).
    pub cb: usize,
}

impl ActivationLayout {
    /// The state-of-the-art layout: `C_b = min(C, N_vlen)` (Section 4.2).
    pub fn vlen_blocked(c: usize, n_vlen: usize) -> Self {
        Self {
            cb: c.min(n_vlen).max(1),
        }
    }

    /// The MBDC multi-block layout: `C_b = N_cline` (Section 6.3).
    pub fn cline_blocked(c: usize, n_cline: usize) -> Self {
        Self {
            cb: c.min(n_cline).max(1),
        }
    }

    /// Plain NCHW (`C_b = 1`), used by the vednn baseline.
    pub fn nchw() -> Self {
        Self { cb: 1 }
    }
}

/// Weight memory layout: `(OC/ocb, IC/icb, KH, KW, icb, ocb)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightLayout {
    /// Inner IC block (`IC_b`, or `N_cline` after loop resizing).
    pub icb: usize,
    /// Inner OC block (`OC_b`).
    pub ocb: usize,
}

impl WeightLayout {
    /// State-of-the-art layout: both blocks tied to the vector length.
    pub fn vlen_blocked(ic: usize, oc: usize, n_vlen: usize) -> Self {
        Self {
            icb: ic.min(n_vlen).max(1),
            ocb: oc.min(n_vlen).max(1),
        }
    }

    /// Loop-resized layout (Section 6.1): IC block decoupled from the vector
    /// length and tied to the cache line.
    pub fn loop_resized(ic: usize, oc: usize, n_vlen: usize, n_cline: usize) -> Self {
        Self {
            icb: ic.min(n_cline).max(1),
            ocb: oc.min(n_vlen).max(1),
        }
    }

    /// Plain OIHW (both blocks 1), used by the vednn baseline.
    pub fn oihw() -> Self {
        Self { icb: 1, ocb: 1 }
    }
}

/// An activation tensor `(N, C, H, W)` resident in an [`Arena`].
#[derive(Debug, Clone, Copy)]
pub struct ActTensor {
    /// Minibatch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Memory layout.
    pub layout: ActivationLayout,
    /// Base byte address in the arena.
    pub base: u64,
}

impl ActTensor {
    /// Allocate a zero-initialized activation tensor.
    pub fn alloc(
        arena: &mut Arena,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        layout: ActivationLayout,
    ) -> Self {
        let t = Self {
            n,
            c,
            h,
            w,
            layout,
            base: 0,
        };
        let mut t = t;
        t.base = arena.alloc_labeled(
            t.elems_padded(),
            &format!("act {n}x{c}x{h}x{w} cb={}", layout.cb),
        );
        t
    }

    /// Number of channel blocks (`C / C_b`, rounded up; the tail block is
    /// zero-padded).
    #[inline]
    pub fn c_blocks(&self) -> usize {
        self.c.div_ceil(self.layout.cb)
    }

    /// Total stored elements including tail-block padding.
    #[inline]
    pub fn elems_padded(&self) -> usize {
        self.n * self.c_blocks() * self.h * self.w * self.layout.cb
    }

    /// Logical element count (`N*C*H*W`).
    #[inline]
    pub fn elems(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Byte address of element `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> u64 {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        let cb = self.layout.cb;
        let idx = (((n * self.c_blocks() + c / cb) * self.h + h) * self.w + w) * cb + c % cb;
        self.base + (idx as u64) * 4
    }

    /// Byte address of the first channel of block `cblk` at `(n, h, w)` —
    /// the address a unit-stride vector load/store of the block starts at
    /// (Algorithm 2 lines 12/19).
    #[inline]
    pub fn block_at(&self, n: usize, cblk: usize, h: usize, w: usize) -> u64 {
        debug_assert!(n < self.n && cblk < self.c_blocks() && h < self.h && w < self.w);
        let cb = self.layout.cb;
        let idx = (((n * self.c_blocks() + cblk) * self.h + h) * self.w + w) * cb;
        self.base + (idx as u64) * 4
    }

    /// Import from a logical NCHW host buffer (length `N*C*H*W`).
    pub fn store_nchw(&self, arena: &mut Arena, data: &[f32]) {
        assert_eq!(data.len(), self.elems(), "NCHW buffer length mismatch");
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        let v = data[((n * self.c + c) * self.h + h) * self.w + w];
                        arena.write(self.at(n, c, h, w), v);
                    }
                }
            }
        }
    }

    /// Export to a logical NCHW host buffer.
    pub fn load_nchw(&self, arena: &Arena) -> Vec<f32> {
        let mut out = vec![0.0; self.elems()];
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        out[((n * self.c + c) * self.h + h) * self.w + w] =
                            arena.read(self.at(n, c, h, w));
                    }
                }
            }
        }
        out
    }

    /// Fill with deterministic pseudo-random values in `[-1, 1)`.
    pub fn fill_random(&self, arena: &mut Arena, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-1.0f32, 1.0);
        let data: Vec<f32> = (0..self.elems()).map(|_| dist.sample(&mut rng)).collect();
        self.store_nchw(arena, &data);
    }

    /// Zero all stored elements (including padding).
    pub fn zero(&self, arena: &mut Arena) {
        arena.fill(self.base, self.elems_padded(), 0.0);
    }
}

/// A weight tensor `(OC, IC, KH, KW)` resident in an [`Arena`].
#[derive(Debug, Clone, Copy)]
pub struct WeiTensor {
    /// Output channels.
    pub oc: usize,
    /// Input channels.
    pub ic: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Memory layout.
    pub layout: WeightLayout,
    /// Base byte address in the arena.
    pub base: u64,
}

impl WeiTensor {
    /// Allocate a zero-initialized weight tensor.
    pub fn alloc(
        arena: &mut Arena,
        oc: usize,
        ic: usize,
        kh: usize,
        kw: usize,
        layout: WeightLayout,
    ) -> Self {
        let mut t = Self {
            oc,
            ic,
            kh,
            kw,
            layout,
            base: 0,
        };
        t.base = arena.alloc_labeled(
            t.elems_padded(),
            &format!(
                "wei {oc}x{ic}x{kh}x{kw} icb={} ocb={}",
                layout.icb, layout.ocb
            ),
        );
        t
    }

    /// Number of IC blocks.
    #[inline]
    pub fn ic_blocks(&self) -> usize {
        self.ic.div_ceil(self.layout.icb)
    }

    /// Number of OC blocks.
    #[inline]
    pub fn oc_blocks(&self) -> usize {
        self.oc.div_ceil(self.layout.ocb)
    }

    /// Total stored elements including padding.
    #[inline]
    pub fn elems_padded(&self) -> usize {
        self.oc_blocks() * self.ic_blocks() * self.kh * self.kw * self.layout.icb * self.layout.ocb
    }

    /// Logical element count.
    #[inline]
    pub fn elems(&self) -> usize {
        self.oc * self.ic * self.kh * self.kw
    }

    /// Byte address of element `(oc, ic, kh, kw)`.
    #[inline]
    pub fn at(&self, oc: usize, ic: usize, kh: usize, kw: usize) -> u64 {
        debug_assert!(oc < self.oc && ic < self.ic && kh < self.kh && kw < self.kw);
        let (icb, ocb) = (self.layout.icb, self.layout.ocb);
        let idx = ((((oc / ocb * self.ic_blocks() + ic / icb) * self.kh + kh) * self.kw + kw)
            * icb
            + ic % icb)
            * ocb
            + oc % ocb;
        self.base + (idx as u64) * 4
    }

    /// Byte address of the OC-block vector at `(oc_blk, ic, kh, kw)` — the
    /// address the micro-kernel's weights vector load starts at
    /// (Algorithm 2 line 14).
    #[inline]
    pub fn oc_vector_at(&self, oc_blk: usize, ic: usize, kh: usize, kw: usize) -> u64 {
        debug_assert!(oc_blk < self.oc_blocks() && ic < self.ic && kh < self.kh && kw < self.kw);
        let (icb, ocb) = (self.layout.icb, self.layout.ocb);
        let idx = ((((oc_blk * self.ic_blocks() + ic / icb) * self.kh + kh) * self.kw + kw) * icb
            + ic % icb)
            * ocb;
        self.base + (idx as u64) * 4
    }

    /// Import from a logical OIHW host buffer (length `OC*IC*KH*KW`).
    pub fn store_oihw(&self, arena: &mut Arena, data: &[f32]) {
        assert_eq!(data.len(), self.elems(), "OIHW buffer length mismatch");
        for oc in 0..self.oc {
            for ic in 0..self.ic {
                for kh in 0..self.kh {
                    for kw in 0..self.kw {
                        let v = data[((oc * self.ic + ic) * self.kh + kh) * self.kw + kw];
                        arena.write(self.at(oc, ic, kh, kw), v);
                    }
                }
            }
        }
    }

    /// Export to a logical OIHW host buffer.
    pub fn load_oihw(&self, arena: &Arena) -> Vec<f32> {
        let mut out = vec![0.0; self.elems()];
        for oc in 0..self.oc {
            for ic in 0..self.ic {
                for kh in 0..self.kh {
                    for kw in 0..self.kw {
                        out[((oc * self.ic + ic) * self.kh + kh) * self.kw + kw] =
                            arena.read(self.at(oc, ic, kh, kw));
                    }
                }
            }
        }
        out
    }

    /// Fill with deterministic pseudo-random values in `[-1, 1)`.
    pub fn fill_random(&self, arena: &mut Arena, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-1.0f32, 1.0);
        let data: Vec<f32> = (0..self.elems()).map(|_| dist.sample(&mut rng)).collect();
        self.store_oihw(arena, &data);
    }

    /// Zero all stored elements (including padding).
    pub fn zero(&self, arena: &mut Arena) {
        arena.fill(self.base, self.elems_padded(), 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_blocked_offsets_match_figure1() {
        // Figure 1: the channel block interleaves channel data for adjacent
        // spatial points: (n, cblk, h, w, cb) order.
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, 1, 64, 4, 4, ActivationLayout { cb: 32 });
        // channel 0..31 at (0,0,0) are contiguous
        assert_eq!(t.at(0, 1, 0, 0), t.at(0, 0, 0, 0) + 4);
        // channel 32 starts a new block: whole H*W*cb plane away
        assert_eq!(
            t.at(0, 32, 0, 0),
            t.at(0, 0, 0, 0) + (4 * 4 * 32 * 4) as u64
        );
        // next spatial point is cb elements away (the Figure 3 stride!)
        assert_eq!(t.at(0, 0, 0, 1), t.at(0, 0, 0, 0) + (32 * 4) as u64);
        assert_eq!(t.block_at(0, 0, 0, 1), t.at(0, 0, 0, 1));
    }

    #[test]
    fn nchw_is_cb1() {
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, 2, 3, 4, 5, ActivationLayout::nchw());
        // NCHW: w is innermost
        assert_eq!(t.at(0, 0, 0, 1), t.at(0, 0, 0, 0) + 4);
        assert_eq!(t.at(0, 1, 0, 0), t.at(0, 0, 0, 0) + (4 * 5 * 4) as u64);
        assert_eq!(t.at(1, 0, 0, 0), t.at(0, 0, 0, 0) + (3 * 4 * 5 * 4) as u64);
    }

    #[test]
    fn store_load_nchw_roundtrip() {
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, 2, 7, 3, 5, ActivationLayout { cb: 4 });
        let data: Vec<f32> = (0..t.elems()).map(|i| i as f32).collect();
        t.store_nchw(&mut arena, &data);
        assert_eq!(t.load_nchw(&arena), data);
    }

    #[test]
    fn tail_block_is_padded() {
        let mut arena = Arena::new();
        // C=7, cb=4 -> 2 blocks, 8 slots per spatial point.
        let t = ActTensor::alloc(&mut arena, 1, 7, 2, 2, ActivationLayout { cb: 4 });
        assert_eq!(t.c_blocks(), 2);
        assert_eq!(t.elems_padded(), 2 * 2 * 2 * 4);
        let data: Vec<f32> = (0..t.elems()).map(|_| 1.0).collect();
        t.store_nchw(&mut arena, &data);
        // Padding slot (channel 7 of block 1) stays zero.
        let pad_addr = t.block_at(0, 1, 0, 0) + 3 * 4;
        assert_eq!(arena.read(pad_addr), 0.0);
    }

    #[test]
    fn weight_blocked_offsets() {
        let mut arena = Arena::new();
        let t = WeiTensor::alloc(&mut arena, 8, 6, 3, 3, WeightLayout { icb: 2, ocb: 4 });
        // oc innermost within block
        assert_eq!(t.at(1, 0, 0, 0), t.at(0, 0, 0, 0) + 4);
        // ic next
        assert_eq!(t.at(0, 1, 0, 0), t.at(0, 0, 0, 0) + (4 * 4) as u64);
        // kw next: icb*ocb
        assert_eq!(t.at(0, 0, 0, 1), t.at(0, 0, 0, 0) + (2 * 4 * 4) as u64);
        assert_eq!(t.oc_vector_at(0, 1, 0, 0), t.at(0, 1, 0, 0));
        assert_eq!(t.oc_vector_at(1, 0, 2, 2), t.at(4, 0, 2, 2));
    }

    #[test]
    fn store_load_oihw_roundtrip() {
        let mut arena = Arena::new();
        let t = WeiTensor::alloc(&mut arena, 5, 7, 3, 3, WeightLayout { icb: 4, ocb: 4 });
        let data: Vec<f32> = (0..t.elems()).map(|i| (i as f32).sin()).collect();
        t.store_oihw(&mut arena, &data);
        assert_eq!(t.load_oihw(&arena), data);
    }

    #[test]
    fn layout_constructors() {
        let l = ActivationLayout::vlen_blocked(2048, 512);
        assert_eq!(l.cb, 512);
        let l = ActivationLayout::vlen_blocked(64, 512);
        assert_eq!(l.cb, 64, "dynamic blocking: C_b = min(C, N_vlen)");
        let l = ActivationLayout::cline_blocked(2048, 32);
        assert_eq!(l.cb, 32);
        let w = WeightLayout::loop_resized(1024, 256, 512, 32);
        assert_eq!(w.icb, 32);
        assert_eq!(w.ocb, 256);
    }

    #[test]
    fn fill_random_is_deterministic() {
        let mut a1 = Arena::new();
        let mut a2 = Arena::new();
        let t1 = ActTensor::alloc(&mut a1, 1, 4, 3, 3, ActivationLayout { cb: 2 });
        let t2 = ActTensor::alloc(&mut a2, 1, 4, 3, 3, ActivationLayout::nchw());
        t1.fill_random(&mut a1, 42);
        t2.fill_random(&mut a2, 42);
        assert_eq!(
            t1.load_nchw(&a1),
            t2.load_nchw(&a2),
            "layout-independent content"
        );
    }
}
