//! The symbolic analyzer verified against the thing it replaced.
//!
//! Four properties keep the static-first path honest:
//!
//! 1. **Verdict agreement**: the symbolic analyzer and the traced replay
//!    reach the same `OOB-ADDR` / `ACC-CLOBBER` deny verdicts over the full
//!    fuzz seed corpus and a randomized batch (the ≥2000-case sweep runs
//!    via `lsvconv fuzz --agreement`; this samples it every test run).
//! 2. **Shift equivalence**: the affine-lift premise — image `n`'s stream
//!    is image 0's stream with activation addresses shifted by
//!    `n · stride_image` and weight addresses untouched — checked
//!    event-by-event on a recorded two-image kernel.
//! 3. **Zero replays on the clean path**: tuned kernels analyze
//!    conclusively, so `analyze_kernel_outcome` must never fall back to the
//!    simulated replay.
//! 4. **Wall-time**: the static path must beat the traced replay it
//!    replaced on a representative kernel set (the lint-kernels speedup).

use lsv_analyze::{analyze_kernel_outcome, analyze_kernel_replay, verdict_agreement};
use lsv_arch::sx_aurora;
use lsv_conv::fuzz::{run_corpus_with_oracle, run_fuzz_with_oracle};
use lsv_conv::tuning::kernel_config;
use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction};
use lsv_vengine::{TraceEvent, VCore};
use std::time::Instant;

#[test]
fn corpus_verdicts_agree_symbolic_vs_replay() {
    let out = run_corpus_with_oracle(&lsv_analyze::deny_validator, Some(&verdict_agreement));
    assert!(out.clean(), "failures: {:?}", out.failures);
    assert_eq!(out.skipped, 0, "corpus entries must all be supported");
}

#[test]
fn randomized_verdicts_agree_symbolic_vs_replay() {
    let out = run_fuzz_with_oracle(
        32,
        0xA9EE,
        &lsv_analyze::deny_validator,
        Some(&verdict_agreement),
    );
    assert!(out.clean(), "failures: {:?}", out.failures);
    assert_eq!(out.cases_run, 32);
}

/// The affine-lift premise, checked directly: record images 0 and 1 of an
/// `N = 2` problem separately and compare streams event-by-event.
#[test]
fn recorded_streams_are_shift_equivalent_across_images() {
    let arch = sx_aurora();
    let p = ConvProblem::new(2, 16, 24, 14, 14, 3, 3, 2, 1);
    for alg in Algorithm::ALL {
        for dir in [Direction::Fwd, Direction::BwdData] {
            let cfg = kernel_config(&arch, &p, dir, alg, 1);
            let prim = ConvDesc::new(p, dir, alg).create_with_config(&arch, cfg, 1);
            let mut arena = lsv_vengine::Arena::new();
            let t = prim.alloc_tensors(&mut arena);
            let src_stride = (t.src.elems_padded() / t.src.n) as u64 * 4;
            let dst_stride = (t.dst.elems_padded() / t.dst.n) as u64 * 4;

            let mut core = VCore::new_introspect(&arch);
            prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..0);
            let s0 = core.take_trace().unwrap();
            prim.execute_core(&mut core, &mut arena, &t, 1..2, 0..0);
            let s1 = core.take_trace().unwrap();

            assert_eq!(s0.len(), s1.len(), "{alg}/{dir:?}: stream lengths differ");
            let regions = arena.regions();
            let shift_of = |region: Option<u32>| -> u64 {
                let Some(r) = region else { return 0 };
                let base = regions[r as usize].base;
                if base == t.src.base {
                    src_stride
                } else if base == t.dst.base {
                    dst_stride
                } else {
                    0 // weights: n-independent
                }
            };
            for (i, e0) in s0.iter().enumerate() {
                let shifted = match *e0 {
                    TraceEvent::ScalarLoad { addr, region } => TraceEvent::ScalarLoad {
                        addr: addr + shift_of(region),
                        region,
                    },
                    TraceEvent::ScalarStore { addr, region } => TraceEvent::ScalarStore {
                        addr: addr + shift_of(region),
                        region,
                    },
                    TraceEvent::VLoad {
                        vr,
                        addr,
                        span,
                        region,
                        vl,
                    } => TraceEvent::VLoad {
                        vr,
                        addr: addr + shift_of(region),
                        span,
                        region,
                        vl,
                    },
                    TraceEvent::VStore {
                        vr,
                        addr,
                        span,
                        region,
                        vl,
                    } => TraceEvent::VStore {
                        vr,
                        addr: addr + shift_of(region),
                        span,
                        region,
                        vl,
                    },
                    TraceEvent::VGather {
                        vr,
                        addr,
                        span,
                        region,
                        vl,
                    } => TraceEvent::VGather {
                        vr,
                        addr: addr + shift_of(region),
                        span,
                        region,
                        vl,
                    },
                    TraceEvent::VScatter {
                        vr,
                        addr,
                        span,
                        region,
                        vl,
                    } => TraceEvent::VScatter {
                        vr,
                        addr: addr + shift_of(region),
                        span,
                        region,
                        vl,
                    },
                    other => other,
                };
                assert_eq!(
                    shifted, s1[i],
                    "{alg}/{dir:?}: event #{i} not shift-equivalent (image 0: {e0:?})"
                );
            }
        }
    }
}

#[test]
fn tuned_kernels_analyze_without_a_single_replay() {
    let arch = sx_aurora();
    let p = ConvProblem::new(2, 16, 24, 14, 14, 3, 3, 2, 1);
    for alg in Algorithm::ALL {
        for dir in Direction::ALL {
            let cfg = kernel_config(&arch, &p, dir, alg, 1);
            let o = analyze_kernel_outcome(&arch, &p, &cfg);
            assert!(o.conclusive, "{alg}/{dir:?}: lift must be conclusive");
            assert!(!o.replayed, "{alg}/{dir:?}: clean path must not simulate");
            assert!(!o.report.has_deny(), "{alg}/{dir:?}: {:?}", o.report);
        }
    }
}

/// The static path must be faster than the traced replay it replaced — the
/// mechanism behind the lint-kernels wall-time drop. Introspection records
/// the stream without the cache hierarchy, issue tracking or scalar
/// forwarding, so a healthy margin exists; asserting `<` keeps the test
/// robust to host noise while still catching a regression to replay-level
/// cost.
#[test]
fn static_path_is_faster_than_replay_path() {
    let arch = sx_aurora();
    // A mid-size Table 3-like layer: big enough that per-kernel setup noise
    // does not dominate the measurement.
    let p = ConvProblem::new(8, 64, 64, 28, 28, 3, 3, 1, 1);
    let kernels: Vec<_> = Algorithm::ALL
        .iter()
        .flat_map(|&alg| Direction::ALL.iter().map(move |&dir| (alg, dir)))
        .map(|(alg, dir)| kernel_config(&arch, &p, dir, alg, 1))
        .collect();

    // Warm both paths once (lazy init, allocator).
    for cfg in &kernels {
        let _ = analyze_kernel_outcome(&arch, &p, cfg);
        let _ = analyze_kernel_replay(&arch, &p, cfg);
    }
    let t0 = Instant::now();
    for cfg in &kernels {
        let o = analyze_kernel_outcome(&arch, &p, cfg);
        assert!(!o.replayed && !o.report.has_deny());
    }
    let static_time = t0.elapsed();
    let t1 = Instant::now();
    for cfg in &kernels {
        let r = analyze_kernel_replay(&arch, &p, cfg);
        assert!(!r.has_deny());
    }
    let replay_time = t1.elapsed();
    println!(
        "static {static_time:?} vs replay {replay_time:?} \
         ({:.2}x)",
        replay_time.as_secs_f64() / static_time.as_secs_f64().max(1e-9)
    );
    assert!(
        static_time < replay_time,
        "static path ({static_time:?}) must beat the traced replay ({replay_time:?})"
    );
}
