//! Property tests for the linter: the tuner's output must always replay
//! clean under the dynamic sanitizers, and targeted corruptions must always
//! be caught by the rule that owns the broken invariant.

use lsv_analyze::{analyze_kernel, RuleId};
use lsv_arch::presets::sx_aurora;
use lsv_conv::tuning::kernel_config;
use lsv_conv::{Algorithm, ConvProblem, Direction};
use proptest::prelude::*;

/// Strategy-space problem: small enough that a full traced replay per case
/// stays cheap, rich enough to hit padding, strides, channel tails and
/// rectangular images.
fn problem(
    ic: usize,
    oc: usize,
    ih: usize,
    iw: usize,
    k: usize,
    stride: usize,
) -> Option<ConvProblem> {
    let pad = k / 2;
    // keep the output non-empty
    if ih + 2 * pad < k || iw + 2 * pad < k {
        return None;
    }
    Some(ConvProblem::new(2, ic, oc, ih, iw, k, k, stride, pad))
}

fn alg(i: usize) -> Algorithm {
    Algorithm::ALL[i % 3]
}

fn dir(i: usize) -> Direction {
    Direction::ALL[i % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The bounds sanitizer never fires on a tuner-produced kernel: every
    // address of the traced replay stays inside its tensor, for any
    // geometry, algorithm and direction. (The acceptance property of the
    // `OOB-ADDR` rule.)
    #[test]
    fn tuner_configs_replay_with_zero_oob(
        ic in 1usize..48,
        oc in 1usize..48,
        ih in 3usize..18,
        iw in 3usize..18,
        k in 1usize..4,
        stride in 1usize..3,
        ai in 0usize..3,
        di in 0usize..3,
    ) {
        let arch = sx_aurora();
        prop_assume!(problem(ic, oc, ih, iw, k, stride).is_some());
        let p = problem(ic, oc, ih, iw, k, stride).unwrap();
        let cfg = kernel_config(&arch, &p, dir(di), alg(ai), 1);
        let r = analyze_kernel(&arch, &p, &cfg);
        prop_assert!(!r.fired(RuleId::OobAddr), "{p} {}: {r:?}", alg(ai));
        prop_assert!(!r.fired(RuleId::AccClobber), "{p} {}: {r:?}", alg(ai));
        prop_assert!(!r.has_deny(), "{p} {}: {r:?}", alg(ai));
    }

    // Each targeted corruption of a valid tuner config is caught by the
    // rule owning the broken invariant.
    #[test]
    fn corrupted_configs_are_always_caught(
        ic in 33usize..128,
        oc in 1usize..64,
        hw in 6usize..20,
        ai in 0usize..3,
        di in 0usize..3,
        corruption in 0usize..4,
    ) {
        let arch = sx_aurora();
        let p = ConvProblem::new(1, ic, oc, hw, hw, 1, 1, 1, 0);
        let mut cfg = kernel_config(&arch, &p, dir(di), alg(ai), 1);
        let expect = match corruption {
            0 => {
                // Register-file overflow: more accumulators than registers.
                cfg.rb.rb_w = arch.n_vregs + 40;
                cfg.rb.rb_h = 1;
                cfg.rb_c = arch.n_vregs + 40;
                RuleId::RegPressure
            }
            1 => {
                // Weights vector block decoupled from the vector length.
                cfg.wei_layout.ocb = cfg.vl + 1;
                RuleId::LayoutDivide
            }
            2 => {
                // Zero-length vectors.
                cfg.vl = 0;
                RuleId::LayoutDivide
            }
            _ => {
                // MBDC line-straddling channel block (IC >= 33 guarantees
                // cb = 20 is neither a divisor of N_cline = 32 nor == IC).
                cfg.algorithm = Algorithm::Mbdc;
                cfg.src_layout.cb = 20;
                RuleId::LayoutDivide
            }
        };
        let r = lsv_analyze::analyze_config(&arch, &p, &cfg);
        prop_assert!(r.fired(expect), "expected {expect} for corruption {corruption}: {r:?}");
        prop_assert!(r.has_deny(), "{r:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The satellite property on the real workload: for any Table 3 layer,
    // algorithm and direction, the tuner's configuration replays with zero
    // `OOB-ADDR` findings (the lint-kernels binary sweeps all 171
    // exhaustively; this samples the space on every test run).
    #[test]
    fn table3_tuner_configs_have_zero_oob(
        layer in 0usize..19,
        ai in 0usize..3,
        di in 0usize..3,
    ) {
        let arch = sx_aurora();
        let p = lsv_models::resnet_layers(256)[layer];
        let cfg = kernel_config(&arch, &p, dir(di), alg(ai), 8);
        let r = analyze_kernel(&arch, &p, &cfg);
        prop_assert!(
            !r.fired(RuleId::OobAddr),
            "layer {layer} {p} {} {}: {r:?}", alg(ai), dir(di)
        );
    }
}
