//! One end-to-end test per rule ID: every rule must demonstrably fire on a
//! synthetic violating configuration (or trace) through the crate's public
//! API, and the all-rules census at the bottom keeps this file honest when a
//! rule is added.

use lsv_analyze::{
    analyze_config, analyze_dataflow, analyze_kernel, analyze_trace, check_profile_reconciliation,
    check_races, check_stream, KernelLift, PartitionModel, RegionModel, Report, RuleId, Severity,
};
use lsv_arch::sx_aurora;
use lsv_conv::multicore::partition_ranges;
use lsv_conv::tuning::kernel_config;
use lsv_conv::{Algorithm, ConvProblem, Direction, KernelConfig};
use lsv_vengine::{Arena, ExecutionMode, TraceEvent, VCore};

/// The canonical DC conflict layer (Table 3 id 8: IC = 512 at 28x28).
fn conflict_layer() -> ConvProblem {
    ConvProblem::new(1, 512, 128, 28, 28, 1, 1, 1, 0)
}

fn tuned(alg: Algorithm, dir: Direction) -> (ConvProblem, KernelConfig) {
    let arch = sx_aurora();
    let p = conflict_layer();
    (p, kernel_config(&arch, &p, dir, alg, 1))
}

#[test]
fn l1_conflict_fires_on_oversized_bdc_block() {
    let arch = sx_aurora();
    let (p, mut cfg) = tuned(Algorithm::Bdc, Direction::Fwd);
    cfg.rb.rb_w = 24; // past the Formula 4 cap of 16 for this layer
    cfg.rb.rb_h = 1;
    let r = analyze_config(&arch, &p, &cfg);
    assert!(r.fired(RuleId::L1Conflict), "{r:?}");
    assert!(r.has_deny(), "BDC promised conflict-freedom on fwd: {r:?}");
}

#[test]
fn bseq_lower_fires_on_undersized_block() {
    let arch = sx_aurora();
    let (p, mut cfg) = tuned(Algorithm::Bdc, Direction::Fwd);
    cfg.rb.rb_w = 3;
    cfg.rb.rb_h = 1;
    let r = analyze_config(&arch, &p, &cfg);
    assert!(r.fired(RuleId::BseqLower), "{r:?}");
}

#[test]
fn bseq_upper_fires_on_the_dc_conflict_layer() {
    // DC's tuner-chosen block (Formula 2 target = 24) already exceeds the
    // conflict-free bound (16) on this layer: the Table 3 observation.
    let arch = sx_aurora();
    let (p, cfg) = tuned(Algorithm::Dc, Direction::Fwd);
    let r = analyze_config(&arch, &p, &cfg);
    assert!(r.fired(RuleId::BseqUpper), "{r:?}");
    assert!(
        !r.has_deny(),
        "DC conflicts are warnings, not errors: {r:?}"
    );
}

#[test]
fn oob_addr_fires_on_an_escaped_address() {
    let arch = sx_aurora();
    let mut arena = Arena::new();
    arena.alloc_labeled(32, "src 1x2x4x4");
    let trace = vec![TraceEvent::VLoad {
        vr: 0,
        addr: 0x7000_0000,
        span: 1024,
        region: None,
        vl: 64,
    }];
    let r = analyze_trace(&arena, &trace, &arch);
    assert!(r.fired(RuleId::OobAddr) && r.has_deny(), "{r:?}");
}

#[test]
fn acc_clobber_fires_on_a_lost_accumulator() {
    let arch = sx_aurora();
    let arena = Arena::new();
    let trace = vec![
        TraceEvent::VZero { vr: 0, vl: 64 },
        TraceEvent::VFma {
            acc: 0,
            w: 8,
            w2: None,
            vl: 64,
        },
        TraceEvent::VZero { vr: 0, vl: 64 }, // partial sums discarded
    ];
    let r = analyze_trace(&arena, &trace, &arch);
    assert!(r.fired(RuleId::AccClobber) && r.has_deny(), "{r:?}");
}

#[test]
fn layout_divide_fires_on_a_line_straddling_mbdc_block() {
    let arch = sx_aurora();
    let (p, mut cfg) = tuned(Algorithm::Mbdc, Direction::Fwd);
    cfg.src_layout.cb = 20; // neither divides N_cline = 32 nor equals IC
    let r = analyze_kernel(&arch, &p, &cfg);
    assert!(r.fired(RuleId::LayoutDivide) && r.has_deny(), "{r:?}");
}

#[test]
fn reg_pressure_fires_on_register_file_overflow() {
    let arch = sx_aurora();
    let (p, mut cfg) = tuned(Algorithm::Dc, Direction::Fwd);
    cfg.rb.rb_w = 28;
    cfg.rb.rb_h = 3; // 84 accumulators on a 64-register file
    let r = analyze_kernel(&arch, &p, &cfg);
    assert!(r.fired(RuleId::RegPressure) && r.has_deny(), "{r:?}");
}

/// Symbolic fixtures: a two-slab activation arena plus a shared weights
/// region, matching the affine models [`lsv_analyze::lift_kernel`] builds.
fn symbolic_regions(n: usize) -> Vec<RegionModel> {
    vec![
        RegionModel::minibatch_scaled(0, "act src", 0x1000, 4096, n),
        RegionModel::minibatch_scaled(1, "act dst", 0x2000, 4096, n),
        RegionModel::shared(2, "wei", 0x10_000, 8192),
    ]
}

#[test]
fn region_overlap_fires_on_a_slab_crossing_access() {
    let stream = vec![TraceEvent::VLoad {
        vr: 0,
        addr: 0x1000 + 4090, // last bytes of src's slab, crossing into dst
        span: 64,
        region: Some(0),
        vl: 16,
    }];
    let r = check_stream(&stream, &symbolic_regions(4), 4, 64);
    assert!(r.fired(RuleId::RegionOverlap) && r.has_deny(), "{r:?}");
}

#[test]
fn vl_exceeds_fires_on_an_overlong_vector_op() {
    let stream = vec![TraceEvent::VZero { vr: 0, vl: 300 }];
    let r = check_stream(&stream, &symbolic_regions(1), 1, 256);
    assert!(r.fired(RuleId::VlExceeds) && r.has_deny(), "{r:?}");
}

#[test]
fn uninit_read_and_dead_write_fire_on_broken_dataflow() {
    let arch = sx_aurora();
    let stream = vec![
        // v1 read before any definition; the v2 load is never consumed.
        TraceEvent::VStore {
            vr: 1,
            addr: 0x2000,
            span: 64,
            region: Some(1),
            vl: 16,
        },
        TraceEvent::VLoad {
            vr: 2,
            addr: 0x1000,
            span: 64,
            region: Some(0),
            vl: 16,
        },
    ];
    let (r, _) = analyze_dataflow(&stream, arch.n_vregs);
    assert!(r.fired(RuleId::UninitRead) && r.has_deny(), "{r:?}");
    assert!(r.fired(RuleId::DeadWrite), "{r:?}");
}

/// Race fixtures: one stream, minibatch-partitioned across 8 cores.
fn minibatch_lift(stream: Vec<TraceEvent>, n: usize, cores: usize) -> KernelLift {
    KernelLift {
        regions: symbolic_regions(n),
        streams: vec![stream],
        partition: PartitionModel::Minibatch(partition_ranges(n, cores)),
        n_full: n,
        conclusive: true,
    }
}

#[test]
fn race_write_overlap_fires_on_a_shared_region_write() {
    let arch = sx_aurora();
    let lift = minibatch_lift(
        vec![TraceEvent::VStore {
            vr: 0,
            addr: 0x10_000,
            span: 256,
            region: Some(2), // weights are shared: every core writes them
            vl: 64,
        }],
        8,
        8,
    );
    let r = check_races(&lift, &arch);
    assert!(r.fired(RuleId::RaceWriteOverlap) && r.has_deny(), "{r:?}");
}

#[test]
fn false_sharing_warns_on_a_sub_line_slab() {
    let arch = sx_aurora();
    // A 64-byte image slab on 128-byte LLC lines: adjacent cores' images
    // share every boundary line.
    let mut lift = minibatch_lift(
        vec![TraceEvent::VStore {
            vr: 0,
            addr: 0x1000,
            span: 64,
            region: Some(0),
            vl: 16,
        }],
        8,
        8,
    );
    lift.regions[0] = RegionModel::minibatch_scaled(0, "act src", 0x1000, 64, 8);
    let r = check_races(&lift, &arch);
    assert!(r.fired(RuleId::FalseSharing), "{r:?}");
    assert!(!r.has_deny(), "false sharing is a perf warning: {r:?}");
}

/// Census: the tests above must collectively cover every rule in the
/// registry, so adding a RuleId without a firing test fails here.
#[test]
fn every_rule_id_has_a_demonstrated_firing() {
    let arch = sx_aurora();
    let mut fired = Report::new();

    let (p, mut cfg) = tuned(Algorithm::Bdc, Direction::Fwd);
    cfg.rb.rb_w = 24;
    cfg.rb.rb_h = 1;
    fired.merge(analyze_config(&arch, &p, &cfg)); // L1-CONFLICT + BSEQ-UPPER
    cfg.rb.rb_w = 3;
    fired.merge(analyze_config(&arch, &p, &cfg)); // BSEQ-LOWER
    cfg.rb.rb_w = 100;
    fired.merge(analyze_config(&arch, &p, &cfg)); // REG-PRESSURE

    let (p, mut cfg) = tuned(Algorithm::Mbdc, Direction::Fwd);
    cfg.dst_layout.cb = 20;
    fired.merge(analyze_config(&arch, &p, &cfg)); // LAYOUT-DIVIDE

    let arena = Arena::new();
    let trace = vec![
        TraceEvent::VFma {
            acc: 0,
            w: 8,
            w2: None,
            vl: 64,
        },
        TraceEvent::VZero { vr: 0, vl: 64 },
        TraceEvent::ScalarStore {
            addr: 0x123_4560,
            region: None,
        },
    ];
    fired.merge(analyze_trace(&arena, &trace, &arch)); // OOB-ADDR + ACC-CLOBBER

    let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
    core.enable_profiler();
    core.region_enter("r");
    core.scalar_ops(3);
    core.region_exit();
    let mut stats = core.drain();
    let profile = core.take_profile().unwrap();
    stats.cycles += 1; // tampered total cannot reconcile
    fired.merge(check_profile_reconciliation(&profile, &stats)); // PROFILE-UNRECONCILED

    // Symbolic bounds: slab overrun into the neighbor + illegal vl.
    let stream = vec![
        TraceEvent::VLoad {
            vr: 0,
            addr: 0x1000 + 4090,
            span: 64,
            region: Some(0),
            vl: 16,
        },
        TraceEvent::VZero { vr: 1, vl: 0 },
    ];
    fired.merge(check_stream(&stream, &symbolic_regions(4), 4, 64)); // REGION-OVERLAP + VL-EXCEEDS

    // Dataflow: read-before-def + unconsumed definition.
    let stream = vec![
        TraceEvent::VStore {
            vr: 1,
            addr: 0x2000,
            span: 64,
            region: Some(1),
            vl: 16,
        },
        TraceEvent::VLoad {
            vr: 2,
            addr: 0x1000,
            span: 64,
            region: Some(0),
            vl: 16,
        },
    ];
    let (df, _) = analyze_dataflow(&stream, arch.n_vregs);
    fired.merge(df); // UNINIT-READ + DEAD-WRITE

    // Races: shared-region write under the minibatch split, plus a
    // sub-line slab for boundary false sharing.
    let mut lift = minibatch_lift(
        vec![
            TraceEvent::VStore {
                vr: 0,
                addr: 0x10_000,
                span: 256,
                region: Some(2),
                vl: 64,
            },
            TraceEvent::VStore {
                vr: 0,
                addr: 0x1000,
                span: 64,
                region: Some(0),
                vl: 16,
            },
        ],
        8,
        8,
    );
    lift.regions[0] = RegionModel::minibatch_scaled(0, "act src", 0x1000, 64, 8);
    fired.merge(check_races(&lift, &arch)); // RACE-WRITE-OVERLAP + FALSE-SHARING

    for rule in RuleId::ALL {
        assert!(fired.fired(rule), "no firing demonstrated for {rule}");
    }
    assert!(fired.count(Severity::Deny) > 0 && fired.count(Severity::Warn) > 0);
}
