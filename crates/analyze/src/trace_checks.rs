//! Dynamic lints over a recorded instruction stream.
//!
//! These run on the trace a [`lsv_vengine::VCore`] records during a replay:
//! the address-stream bounds sanitizer (`OOB-ADDR`) and the accumulator
//! lifetime checker (`ACC-CLOBBER`). Both are properties a static look at the
//! configuration cannot prove — they depend on the addresses the generated
//! kernel actually emits.

use crate::diagnostics::{CappedRule, Report, RuleId, Severity};
use lsv_vengine::{Arena, TraceEvent};

/// What a memory-touching trace event claims about itself: an operation name,
/// the first byte it touches, its byte footprint, and the region the engine
/// resolved for its base address at record time.
pub(crate) fn memory_footprint(ev: &TraceEvent) -> Option<(&'static str, u64, u64, Option<u32>)> {
    match *ev {
        TraceEvent::ScalarLoad { addr, region } => Some(("scalar load", addr, 4, region)),
        TraceEvent::ScalarStore { addr, region } => Some(("scalar store", addr, 4, region)),
        TraceEvent::VLoad {
            addr, span, region, ..
        } => Some(("vector load", addr, span, region)),
        TraceEvent::VStore {
            addr, span, region, ..
        } => Some(("vector store", addr, span, region)),
        TraceEvent::VGather {
            addr, span, region, ..
        } => Some(("block gather", addr, span, region)),
        TraceEvent::VScatter {
            addr, span, region, ..
        } => Some(("block scatter", addr, span, region)),
        _ => None,
    }
}

/// Address-stream bounds sanitizer: every memory access in the trace must lie
/// wholly inside one arena allocation. An access outside every allocation, or
/// one that starts inside a tensor but runs past its extent, is the simulator
/// equivalent of a segfault / silent corruption of a neighbouring tensor.
fn check_oob(arena: &Arena, trace: &[TraceEvent], report: &mut Report) {
    let mut cap = CappedRule::new(RuleId::OobAddr);
    for (i, ev) in trace.iter().enumerate() {
        let Some((what, addr, span, region)) = memory_footprint(ev) else {
            continue;
        };
        match region {
            None => cap.push(
                report,
                format!(
                    "trace event #{i}: {what} of {span} bytes at {addr:#x} hits \
                     no allocation (arena holds {} regions)",
                    arena.regions().len()
                ),
            ),
            Some(r) => {
                let reg = &arena.regions()[r as usize];
                if addr + span > reg.end() {
                    cap.push(
                        report,
                        format!(
                            "trace event #{i}: {what} of {span} bytes at {addr:#x} \
                             starts inside `{}` [{:#x}, {:#x}) but overruns it by \
                             {} bytes",
                            reg.label,
                            reg.base,
                            reg.end(),
                            addr + span - reg.end()
                        ),
                    );
                }
            }
        }
    }
    cap.finish(report);
}

/// Per-register accumulator state for the clobber analysis.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AccState {
    /// Never accumulated into, or drained since.
    Clean,
    /// Holds FMA results not yet stored/reduced; the event index of the last
    /// contributing FMA is kept for the diagnostic.
    Dirty(usize),
}

/// Accumulator-hazard analysis: a register that received FMA results must be
/// stored (or reduced) before anything overwrites it, and must not still hold
/// live results when the trace ends. Either case means the kernel computed
/// partial sums and threw them away — numerically wrong output even though
/// every individual instruction was well-formed.
fn check_acc_clobber(trace: &[TraceEvent], report: &mut Report) {
    let mut cap = CappedRule::new(RuleId::AccClobber);
    let mut state: Vec<AccState> = Vec::new();
    let ensure = |state: &mut Vec<AccState>, vr: usize| {
        if state.len() <= vr {
            state.resize(vr + 1, AccState::Clean);
        }
    };
    for (i, ev) in trace.iter().enumerate() {
        match *ev {
            TraceEvent::VFma { acc, .. } => {
                ensure(&mut state, acc);
                state[acc] = AccState::Dirty(i);
            }
            TraceEvent::VStore { vr, .. }
            | TraceEvent::VScatter { vr, .. }
            | TraceEvent::VReduce { vr, .. } => {
                ensure(&mut state, vr);
                state[vr] = AccState::Clean;
            }
            TraceEvent::VZero { vr, .. }
            | TraceEvent::VLoad { vr, .. }
            | TraceEvent::VGather { vr, .. } => {
                ensure(&mut state, vr);
                if let AccState::Dirty(fma) = state[vr] {
                    let how = match ev {
                        TraceEvent::VZero { .. } => "zeroed",
                        _ => "overwritten by a load",
                    };
                    cap.push(
                        report,
                        format!(
                            "trace event #{i}: accumulator v{vr} is {how} while \
                             holding unsaved FMA results (last accumulation at \
                             event #{fma}) — partial sums are discarded"
                        ),
                    );
                    // Reset so one lost accumulator is reported once, not at
                    // every subsequent reuse.
                    state[vr] = AccState::Clean;
                }
            }
            _ => {}
        }
    }
    for (vr, s) in state.iter().enumerate() {
        if let AccState::Dirty(fma) = s {
            cap.push(
                report,
                format!(
                    "accumulator v{vr} still holds unsaved FMA results at the end \
                     of the trace (last accumulation at event #{fma})"
                ),
            );
        }
    }
    cap.finish(report);
}

/// Register-file usage census over the trace: the highest vector register the
/// recorded stream actually touches, useful for cross-checking the static
/// [`crate::static_checks::analyze_config`] pressure model. Returns
/// `None` for a trace with no vector-register activity.
pub fn max_vreg_used(trace: &[TraceEvent]) -> Option<usize> {
    trace
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::VLoad { vr, .. }
            | TraceEvent::VStore { vr, .. }
            | TraceEvent::VZero { vr, .. }
            | TraceEvent::VReduce { vr, .. }
            | TraceEvent::VGather { vr, .. }
            | TraceEvent::VScatter { vr, .. } => Some(vr),
            TraceEvent::VFma { acc, w, w2, .. } => Some(acc.max(w).max(w2.unwrap_or(0))),
            _ => None,
        })
        .max()
}

/// Run every dynamic check over a recorded trace against the arena it
/// executed in, plus the register-file bound of the architecture that
/// recorded it (for the trace-level `REG-PRESSURE` cross-check).
pub fn analyze_trace(arena: &Arena, trace: &[TraceEvent], n_vregs: usize) -> Report {
    let mut report = Report::new();
    check_oob(arena, trace, &mut report);
    check_acc_clobber(trace, &mut report);
    if let Some(hi) = max_vreg_used(trace) {
        if hi >= n_vregs {
            report.push(
                RuleId::RegPressure,
                Severity::Deny,
                format!(
                    "trace touches vector register v{hi} but the architecture \
                     has only {n_vregs} registers (v0..v{})",
                    n_vregs - 1
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::MAX_FINDINGS_PER_RULE;

    fn arena_with(labels: &[(&str, usize)]) -> Arena {
        let mut a = Arena::new();
        for &(label, elems) in labels {
            a.alloc_labeled(elems, label);
        }
        a
    }

    #[test]
    fn in_bounds_trace_is_clean() {
        let a = arena_with(&[("src", 64)]);
        let base = a.regions()[0].base;
        let trace = vec![
            TraceEvent::VZero { vr: 0, vl: 32 },
            TraceEvent::VLoad {
                vr: 1,
                addr: base,
                span: 128,
                region: Some(0),
                vl: 32,
            },
            TraceEvent::VFma {
                acc: 0,
                w: 1,
                w2: None,
                vl: 32,
            },
            TraceEvent::VStore {
                vr: 0,
                addr: base + 128,
                span: 128,
                region: Some(0),
                vl: 32,
            },
        ];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn overrun_names_the_region() {
        let a = arena_with(&[("dst 1x8x2x2", 32)]);
        let base = a.regions()[0].base;
        let trace = vec![TraceEvent::VStore {
            vr: 0,
            addr: base + 64,
            span: 128, // region holds 128 bytes; this overruns by 64
            region: Some(0),
            vl: 32,
        }];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.fired(RuleId::OobAddr) && r.has_deny(), "{r:?}");
        let msg = r.by_rule(RuleId::OobAddr).next().unwrap().message.clone();
        assert!(msg.contains("dst 1x8x2x2"), "{msg}");
        assert!(msg.contains("overruns it by 64 bytes"), "{msg}");
    }

    #[test]
    fn unmapped_address_is_denied() {
        let a = arena_with(&[("src", 16)]);
        let trace = vec![TraceEvent::ScalarLoad {
            addr: 0x4000_0000,
            region: None,
        }];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.fired(RuleId::OobAddr) && r.has_deny(), "{r:?}");
    }

    #[test]
    fn finding_flood_is_capped() {
        let a = arena_with(&[("src", 16)]);
        let trace: Vec<TraceEvent> = (0..40)
            .map(|i| TraceEvent::ScalarLoad {
                addr: 0x4000_0000 + i * 4,
                region: None,
            })
            .collect();
        let r = analyze_trace(&a, &trace, 64);
        assert_eq!(
            r.by_rule(RuleId::OobAddr).count(),
            MAX_FINDINGS_PER_RULE + 1
        );
        assert_eq!(r.count(Severity::Deny), MAX_FINDINGS_PER_RULE);
        assert_eq!(r.count(Severity::Note), 1, "{r:?}");
    }

    #[test]
    fn clobbered_accumulator_is_denied() {
        let a = arena_with(&[("src", 64)]);
        let base = a.regions()[0].base;
        let trace = vec![
            TraceEvent::VFma {
                acc: 3,
                w: 10,
                w2: None,
                vl: 64,
            },
            TraceEvent::VZero { vr: 3, vl: 64 }, // dirty accumulator lost
            TraceEvent::VStore {
                vr: 3,
                addr: base,
                span: 4,
                region: Some(0),
                vl: 1,
            },
        ];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.fired(RuleId::AccClobber) && r.has_deny(), "{r:?}");
        assert_eq!(r.by_rule(RuleId::AccClobber).count(), 1, "reported once");
    }

    #[test]
    fn dirty_accumulator_at_end_is_denied() {
        let a = arena_with(&[("src", 64)]);
        let trace = vec![TraceEvent::VFma {
            acc: 5,
            w: 9,
            w2: None,
            vl: 64,
        }];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.fired(RuleId::AccClobber), "{r:?}");
        let msg = r
            .by_rule(RuleId::AccClobber)
            .next()
            .unwrap()
            .message
            .clone();
        assert!(msg.contains("end of the trace"), "{msg}");
    }

    #[test]
    fn weight_reload_into_clean_register_is_fine() {
        let a = arena_with(&[("wei", 64)]);
        let base = a.regions()[0].base;
        // The double-buffer pattern: load weights, FMA into a *different*
        // accumulator, reload the weight register.
        let trace = vec![
            TraceEvent::VLoad {
                vr: 8,
                addr: base,
                span: 64,
                region: Some(0),
                vl: 16,
            },
            TraceEvent::VFma {
                acc: 0,
                w: 8,
                w2: None,
                vl: 16,
            },
            TraceEvent::VLoad {
                vr: 8,
                addr: base + 64,
                span: 64,
                region: Some(0),
                vl: 16,
            },
            TraceEvent::VFma {
                acc: 0,
                w: 8,
                w2: None,
                vl: 16,
            },
            TraceEvent::VReduce { vr: 0, vl: 16 },
        ];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn trace_register_overflow_is_denied() {
        let a = arena_with(&[("src", 16)]);
        let trace = vec![TraceEvent::VZero { vr: 64, vl: 64 }];
        let r = analyze_trace(&a, &trace, 64);
        assert!(r.fired(RuleId::RegPressure) && r.has_deny(), "{r:?}");
        assert_eq!(max_vreg_used(&trace), Some(64));
    }
}
