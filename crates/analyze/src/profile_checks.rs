//! Reconciliation check for the region profiler's accounting.
//!
//! The profiler promises *exact* conservation: self (exclusive) cycles summed
//! over every region path equal the core's drained `CoreStats::cycles`, and
//! the same for instruction and cache-event totals (the drain syncs the root
//! region to the final horizon, so no cycle can escape attribution). This
//! pass re-derives those sums from a [`RegionProfile`] and emits
//! `PROFILE-UNRECONCILED` at `Deny` severity for any mismatch — the profile
//! is misleading and must not be reported.

use crate::diagnostics::{Report, RuleId, Severity};
use lsv_vengine::{CoreStats, RegionProfile};

/// Check that `profile`'s per-region accounting reconciles with the
/// whole-run counters in `stats` (normally `profile.total`, but callers that
/// kept their own drained [`CoreStats`] can cross-check against that too).
pub fn check_profile_reconciliation(profile: &RegionProfile, stats: &CoreStats) -> Report {
    let mut report = Report::new();

    let self_sum = profile.self_cycles_total();
    if self_sum != stats.cycles {
        report.push(
            RuleId::ProfileUnreconciled,
            Severity::Deny,
            format!(
                "per-region self cycles sum to {self_sum} but the core ran {} cycles \
                 (delta {})",
                stats.cycles,
                stats.cycles as i64 - self_sum as i64
            ),
        );
    }

    let insts = profile.insts_total();
    if insts != stats.insts {
        report.push(
            RuleId::ProfileUnreconciled,
            Severity::Deny,
            format!(
                "per-region instruction totals ({} insts) differ from the core's ({})",
                insts.total(),
                stats.insts.total()
            ),
        );
    }

    let cache = profile.cache_total();
    if cache != stats.cache {
        report.push(
            RuleId::ProfileUnreconciled,
            Severity::Deny,
            format!(
                "per-region cache totals (L1 {}/{} hit/miss) differ from the core's \
                 (L1 {}/{})",
                cache.l1.hits, cache.l1.misses, stats.cache.l1.hits, stats.cache.l1.misses
            ),
        );
    }

    let stalls = profile.regions.iter().fold([0u64; 4], |mut acc, r| {
        for (slot, (_, cycles)) in acc.iter_mut().zip(r.stall_breakdown()) {
            *slot += cycles;
        }
        acc
    });
    let expect: Vec<u64> = stats.stall_breakdown().iter().map(|&(_, c)| c).collect();
    if stalls.as_slice() != expect.as_slice() {
        report.push(
            RuleId::ProfileUnreconciled,
            Severity::Deny,
            format!("per-region stall totals {stalls:?} differ from the core's {expect:?}"),
        );
    }

    if profile.dropped_spans > 0 {
        report.push(
            RuleId::ProfileUnreconciled,
            Severity::Warn,
            format!(
                "{} span events were dropped (MAX_SPAN_EVENTS reached); the trace \
                 timeline is truncated (accounting is unaffected)",
                profile.dropped_spans
            ),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_vengine::{ExecutionMode, VCore};

    fn profiled_run() -> (RegionProfile, CoreStats) {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        core.enable_profiler();
        core.region_enter("a");
        core.scalar_ops(7);
        core.region_enter("b");
        for reg in 0..3 {
            core.vbroadcast_zero(reg, 256);
        }
        core.region_exit();
        core.region_exit();
        let stats = core.drain();
        (core.take_profile().unwrap(), stats)
    }

    #[test]
    fn clean_profile_reconciles() {
        let (profile, stats) = profiled_run();
        let report = check_profile_reconciliation(&profile, &stats);
        assert!(
            report.diagnostics.is_empty(),
            "unexpected findings: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn tampered_totals_are_denied() {
        let (profile, mut stats) = profiled_run();
        stats.cycles += 100;
        stats.insts.vfmas += 1;
        let report = check_profile_reconciliation(&profile, &stats);
        assert!(report.has_deny());
        assert!(report.fired(RuleId::ProfileUnreconciled));
        assert_eq!(report.count(Severity::Deny), 2);
    }
}
