//! Static multicore race detector: prove the Section 4.3 work partitioning
//! write-disjoint across cores from the symbolic lift alone.
//!
//! [`lsv_conv::execute_multicore`] splits work with
//! [`lsv_conv::multicore::partition_ranges`] — the minibatch for fwd /
//! bwd-data, the small feature-map dimension's blocks for bwd-weights. The
//! lift ([`crate::symbolic::KernelLift`]) records the same partitioning, so
//! the detector and the executor can never drift apart.
//!
//! * **Minibatch** kernels: every core executes the *same* stream shifted by
//!   its image range. Cross-core write disjointness therefore reduces to two
//!   per-event facts: a write must target an n-scaled region (a write to a
//!   shared region is executed by every core → `RACE-WRITE-OVERLAP`), and it
//!   must stay inside its image slab (a slab-crossing write lands in a
//!   neighboring core's image at every partition boundary → deny).
//!   `FALSE-SHARING` warns when the write hull of image `k−1` ends in the
//!   same cache line where image `k`'s hull begins across a core boundary —
//!   exact because arena bases are page-aligned and the line divides the page.
//! * **SmallBlocks** kernels: cores execute *different* streams (their block
//!   slices), recorded separately. Per-core write-interval sets are merged
//!   and compared pairwise: overlap across cores → `RACE-WRITE-OVERLAP`
//!   deny; disjoint but same-cache-line adjacency → `FALSE-SHARING` warn.

use crate::diagnostics::{CappedRule, Report, RuleId, Severity};
use crate::symbolic::{footprint, KernelLift, PartitionModel};
use lsv_arch::ArchParams;

/// Merge sorted-in-place raw intervals into a disjoint sorted list.
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in iv {
        match merged.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// Merged, sorted write intervals per region (indexed like `regions`) that
/// one stream makes — a single pass over the stream.
pub(crate) fn write_intervals(
    stream: &[lsv_vengine::TraceEvent],
    n_regions: usize,
) -> Vec<Vec<(u64, u64)>> {
    let mut raw: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_regions];
    for ev in stream {
        if let Some((_, Some(r), addr, span, true)) = footprint(ev) {
            if r < n_regions {
                raw[r].push((addr, addr + span));
            }
        }
    }
    raw.into_iter().map(merge_intervals).collect()
}

/// Check the multicore partitioning of a lifted kernel for write-set races
/// and false sharing. Clean by construction when at most one core gets work.
pub fn check_races(lift: &KernelLift, arch: &ArchParams) -> Report {
    let line = arch.llc.line.max(1) as u64;
    match &lift.partition {
        PartitionModel::Minibatch(ranges) => check_minibatch(lift, ranges.len(), line),
        PartitionModel::SmallBlocks(_) => check_small_blocks(lift, line),
    }
}

fn check_minibatch(lift: &KernelLift, active_cores: usize, line: u64) -> Report {
    let mut report = Report::new();
    if active_cores <= 1 {
        return report;
    }
    let mut race = CappedRule::new(RuleId::RaceWriteOverlap);
    let mut fs = CappedRule::with_severity(RuleId::FalseSharing, Severity::Warn);
    // (lo, hi) write hull per region, in-slab writes only.
    let mut hulls: Vec<Option<(u64, u64)>> = vec![None; lift.regions.len()];

    let stream = lift.streams.first().map_or(&[][..], |s| &s[..]);
    for (i, ev) in stream.iter().enumerate() {
        let Some((what, Some(region), addr, span, true)) = footprint(ev) else {
            continue;
        };
        let Some(m) = lift.regions.get(region) else {
            continue;
        };
        let offset = addr.saturating_sub(m.base);
        if m.n_coeff == 0 {
            race.push(
                &mut report,
                format!(
                    "instruction #{i}: {what} to shared region `{}` at offset {offset:#x} \
                     is executed by all {active_cores} cores — overlapping write sets",
                    m.label
                ),
            );
            continue;
        }
        if offset + span > m.bytes_image {
            race.push(
                &mut report,
                format!(
                    "instruction #{i}: {what} at offset {offset:#x}+{span} crosses the \
                     image slab of `{}` ({} bytes) — it lands in the neighboring \
                     core's image at every partition boundary",
                    m.label, m.bytes_image
                ),
            );
            continue;
        }
        let h = &mut hulls[region];
        *h = Some(match *h {
            Some((lo, hi)) => (lo.min(offset), hi.max(offset + span)),
            None => (offset, offset + span),
        });
    }

    for (region, hull) in hulls.iter().enumerate() {
        let Some((wlo, whi)) = *hull else { continue };
        let m = &lift.regions[region];
        let s = m.n_coeff;
        // Partition boundaries are the starts of ranges 1.. — but the hull
        // adjacency predicate only depends on the boundary image index k, and
        // every k in 1..n_full is a boundary for *some* legal core count, so
        // evaluating the recorded boundaries keeps the warning honest for
        // this run's partitioning.
        if let PartitionModel::Minibatch(ranges) = &lift.partition {
            for r in ranges.iter().skip(1) {
                let k = r.start as u64;
                let last_line = (m.base + (k - 1) * s + whi - 1) / line;
                let first_line = (m.base + k * s + wlo) / line;
                if last_line == first_line {
                    fs.push(
                        &mut report,
                        format!(
                            "cores sharing cache line {first_line:#x}: image {} of `{}` \
                             ends its write hull in the line where image {k} begins \
                             ({}-byte lines)",
                            k - 1,
                            m.label,
                            line
                        ),
                    );
                }
            }
        }
    }
    race.finish(&mut report);
    fs.finish(&mut report);
    report
}

fn check_small_blocks(lift: &KernelLift, line: u64) -> Report {
    let mut report = Report::new();
    if lift.streams.len() <= 1 {
        return report;
    }
    let mut race = CappedRule::new(RuleId::RaceWriteOverlap);
    let mut fs = CappedRule::with_severity(RuleId::FalseSharing, Severity::Warn);

    // One pass per stream: per-region merged interval lists, tagged by core.
    let per_core: Vec<Vec<Vec<(u64, u64)>>> = lift
        .streams
        .iter()
        .map(|s| write_intervals(s, lift.regions.len()))
        .collect();
    for m in &lift.regions {
        // All write intervals to this region, tagged with the writing core.
        let mut tagged: Vec<(u64, u64, usize)> = Vec::new();
        for (core, intervals) in per_core.iter().enumerate() {
            for &(lo, hi) in &intervals[m.index] {
                tagged.push((lo, hi, core));
            }
        }
        if tagged.len() < 2 {
            continue;
        }
        tagged.sort_unstable();
        let (mut prev_hi, mut prev_core) = (tagged[0].1, tagged[0].2);
        for &(lo, hi, core) in &tagged[1..] {
            if lo < prev_hi {
                if core != prev_core {
                    race.push(
                        &mut report,
                        format!(
                            "cores {prev_core} and {core} both write \
                             [{:#x}, {:#x}) of `{}` — overlapping write sets \
                             under the small-block split",
                            lo,
                            prev_hi.min(hi),
                            m.label
                        ),
                    );
                }
            } else if core != prev_core && (prev_hi - 1) / line == lo / line {
                fs.push(
                    &mut report,
                    format!(
                        "cores {prev_core} and {core} write disjoint ranges of `{}` \
                         inside the same {line}-byte cache line (boundary at {lo:#x})",
                        m.label
                    ),
                );
            }
            if hi > prev_hi {
                prev_hi = hi;
                prev_core = core;
            }
        }
    }
    race.finish(&mut report);
    fs.finish(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{denies, RegionModel};
    use lsv_arch::sx_aurora;
    use lsv_vengine::TraceEvent;

    fn vstore(addr: u64, span: u64, region: u32) -> TraceEvent {
        TraceEvent::VStore {
            vr: 0,
            addr,
            span,
            region: Some(region),
            vl: (span / 4) as usize,
        }
    }

    fn minibatch_lift(stream: Vec<TraceEvent>, n: usize, cores: usize) -> KernelLift {
        KernelLift {
            regions: vec![
                RegionModel::minibatch_scaled(0, "act src", 0x1000, 4096, n),
                RegionModel::minibatch_scaled(1, "act dst", 0x10_000, 4096, n),
                RegionModel::shared(2, "wei", 0x100_000, 8192),
            ],
            streams: vec![stream],
            partition: PartitionModel::Minibatch(lsv_conv::multicore::partition_ranges(n, cores)),
            n_full: n,
            conclusive: true,
        }
    }

    #[test]
    fn in_slab_writes_are_race_free() {
        let arch = sx_aurora();
        let lift = minibatch_lift(vec![vstore(0x10_000, 4096, 1)], 8, 8);
        let r = check_races(&lift, &arch);
        // Full-slab writes touch the boundary line, so a false-sharing note
        // is acceptable; a race is not.
        assert!(!r.fired(RuleId::RaceWriteOverlap), "{r:?}");
        assert!(!r.has_deny(), "{r:?}");
    }

    #[test]
    fn shared_region_write_is_a_race_under_minibatch_split() {
        let arch = sx_aurora();
        let lift = minibatch_lift(vec![vstore(0x100_000, 256, 2)], 8, 8);
        let r = check_races(&lift, &arch);
        assert!(denies(&r, RuleId::RaceWriteOverlap), "{r:?}");
        assert!(r.diagnostics[0].to_string().contains("all 8 cores"));
        // Same write with a single core is not a race.
        let solo = minibatch_lift(vec![vstore(0x100_000, 256, 2)], 1, 1);
        assert!(check_races(&solo, &arch).diagnostics.is_empty());
    }

    #[test]
    fn slab_crossing_write_is_a_race() {
        let arch = sx_aurora();
        let lift = minibatch_lift(vec![vstore(0x10_000 + 4000, 256, 1)], 8, 8);
        let r = check_races(&lift, &arch);
        assert!(denies(&r, RuleId::RaceWriteOverlap), "{r:?}");
        assert!(r.diagnostics[0].to_string().contains("partition boundary"));
    }

    #[test]
    fn boundary_line_sharing_warns_but_does_not_deny() {
        let arch = sx_aurora();
        let line = arch.llc.line as u64;
        // Write hull ends exactly at the slab end and the next image's hull
        // begins at offset 0 → same cache line iff slab size is not
        // line-aligned. Use a 4096-byte slab (line-aligned) with a hull that
        // ends mid-line: [4096-line/2 .. 4096) and starts at 0. Image k
        // starts at k*4096 which is line-aligned, so the hull *start* shares
        // no line with the previous end... instead craft a hull covering
        // [0, 4096): end line == start line of next image iff 4096 % line != 0.
        // With line=128 | 4096 the aligned case is clean:
        let clean = minibatch_lift(vec![vstore(0x10_000, 4096, 1)], 8, 8);
        let rc = check_races(&clean, &arch);
        assert!(!rc.fired(RuleId::FalseSharing), "{rc:?}");
        // A hull that stops short of the slab end but within the last line
        // of image k−1 cannot share with image k (aligned slabs). To get a
        // genuine shared line, shrink the modelled slab below line size:
        let mut lift = minibatch_lift(vec![], 8, 8);
        lift.regions[1] = RegionModel::minibatch_scaled(1, "act dst", 0x10_000, 64, 8);
        lift.streams[0] = vec![vstore(0x10_000, 64, 1)];
        let r = check_races(&lift, &arch);
        assert!(r.fired(RuleId::FalseSharing), "{r:?}");
        assert!(!r.has_deny(), "{r:?}");
        assert_eq!(line, 128, "test assumes 128-byte LLC lines");
    }

    fn small_blocks_lift(streams: Vec<Vec<TraceEvent>>) -> KernelLift {
        let n_ranges = streams.len();
        KernelLift {
            regions: vec![RegionModel::shared(0, "wei diff", 0x1000, 1 << 20)],
            streams,
            partition: PartitionModel::SmallBlocks(lsv_conv::multicore::partition_ranges(
                n_ranges,
                n_ranges.max(1),
            )),
            n_full: 4,
            conclusive: true,
        }
    }

    #[test]
    fn disjoint_small_block_writes_are_clean() {
        let arch = sx_aurora();
        // Two cores, line-aligned disjoint slices of W_diff.
        let lift = small_blocks_lift(vec![
            vec![vstore(0x1000, 4096, 0)],
            vec![vstore(0x2000, 4096, 0)],
        ]);
        let r = check_races(&lift, &arch);
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn overlapping_small_block_writes_are_denied() {
        let arch = sx_aurora();
        let lift = small_blocks_lift(vec![
            vec![vstore(0x1000, 4096, 0)],
            vec![vstore(0x1000 + 2048, 4096, 0)],
        ]);
        let r = check_races(&lift, &arch);
        assert!(denies(&r, RuleId::RaceWriteOverlap), "{r:?}");
        assert!(r.diagnostics[0].to_string().contains("cores 0 and 1"));
    }

    #[test]
    fn same_line_adjacency_across_cores_warns() {
        let arch = sx_aurora();
        // Core 0 ends at 0x1020, core 1 begins there: same 128-byte line.
        let lift = small_blocks_lift(vec![
            vec![vstore(0x1000, 32, 0)],
            vec![vstore(0x1020, 32, 0)],
        ]);
        let r = check_races(&lift, &arch);
        assert!(r.fired(RuleId::FalseSharing), "{r:?}");
        assert!(!r.has_deny(), "{r:?}");
        // Line-aligned split: clean.
        let aligned = small_blocks_lift(vec![
            vec![vstore(0x1000, 128, 0)],
            vec![vstore(0x1080, 128, 0)],
        ]);
        assert!(check_races(&aligned, &arch).diagnostics.is_empty());
    }

    #[test]
    fn intervals_merge_per_core_before_comparison() {
        // Same core writing overlapping chunks is not a race with itself.
        let stream = vec![vstore(0x1000, 256, 0), vstore(0x1100, 256, 0)];
        let merged = write_intervals(&stream, 1);
        assert_eq!(merged[0], vec![(0x1000, 0x1200)]);
        let arch = sx_aurora();
        let lift = small_blocks_lift(vec![stream, vec![vstore(0x2000, 256, 0)]]);
        let r = check_races(&lift, &arch);
        assert!(!r.fired(RuleId::RaceWriteOverlap), "{r:?}");
    }
}
