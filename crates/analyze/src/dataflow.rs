//! Register dataflow over a recorded kernel stream: def-use chains per
//! vector register, giving hazard rules the traced replay cannot express
//! and an *exact* register-pressure proof.
//!
//! The stream is the same introspection recording [`crate::symbolic`] lifts
//! — no functional or timing state is consulted. Per event the register
//! effects are:
//!
//! | event                | reads            | writes      |
//! |----------------------|------------------|-------------|
//! | `VLoad`/`VGather`    | —                | `vr`        |
//! | `VZero`              | —                | `vr`        |
//! | `VStore`/`VScatter`  | `vr`             | —           |
//! | `VReduce`            | `vr`             | —           |
//! | `VFma`               | `acc`, `w`, `w2` | `acc` (RMW) |
//!
//! Rules:
//!
//! * `UNINIT-READ` — a register is read before any write defines it.
//! * `DEAD-WRITE` — a definition is overwritten (or the stream ends)
//!   without ever being read. Severity depends on what died: a dead *load*
//!   is wasted memory traffic but functionally harmless (the bwd-data
//!   kernel's software-pipelined weight loads legitimately prefetch taps
//!   whose `producer()` set is empty under striding) → `Warn`; a dead
//!   *computed or zeroed* value means the generator discarded work →
//!   `Deny`.
//! * `ACC-CLOBBER` — dataflow-precise accumulator-hazard analysis: an FMA
//!   chain's partial sum is overwritten by a load/zero, or still dirty at
//!   stream end, without an intervening store/reduce. Replaces the traced
//!   replay's version verbatim (the verdicts are cross-checked by the fuzz
//!   agreement oracle).
//! * `REG-PRESSURE` — a register index beyond the architected file is
//!   touched. The message carries the *exact* maximum number of
//!   simultaneously live registers (backward liveness scan), replacing the
//!   Formula 4 upper bound of the static config check with a proof.

use crate::diagnostics::{CappedRule, Report, RuleId, Severity};
use lsv_vengine::TraceEvent;

/// Per-stream dataflow facts, usable by callers for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataflowSummary {
    /// Highest register index touched, if any vector instruction ran.
    pub max_vreg: Option<usize>,
    /// Exact maximum number of simultaneously live registers.
    pub max_live: usize,
    /// Total register definitions (writes).
    pub defs: u64,
    /// Total register uses (reads).
    pub uses: u64,
}

#[derive(Clone, Copy, Default, PartialEq)]
enum DefKind {
    #[default]
    Load,
    Zero,
    Fma,
}

#[derive(Clone, Copy, Default)]
struct RegState {
    written: bool,
    /// Event index of the live (most recent) definition.
    def_at: usize,
    /// What kind of instruction produced the live definition.
    def_kind: DefKind,
    /// The live definition has been read at least once.
    read_since: bool,
    /// The register holds an unstored FMA partial sum.
    dirty_acc: bool,
    /// `UNINIT-READ` already reported for this register (suppress repeats).
    uninit_reported: bool,
}

/// Analyze def-use chains over one recorded stream. `n_vregs` is the
/// architected register-file size.
pub fn analyze_dataflow(stream: &[TraceEvent], n_vregs: usize) -> (Report, DataflowSummary) {
    let mut report = Report::new();
    let mut uninit = CappedRule::new(RuleId::UninitRead);
    let mut dead = CappedRule::new(RuleId::DeadWrite);
    let mut dead_load = CappedRule::with_severity(RuleId::DeadWrite, Severity::Warn);
    let mut clobber = CappedRule::new(RuleId::AccClobber);
    let mut pressure = CappedRule::new(RuleId::RegPressure);

    let mut regs: Vec<RegState> = Vec::new();
    let mut summary = DataflowSummary::default();
    // Highest register index touched, plus one (0 = none yet). Tracked as a
    // plain integer so the hot loop stays branch-cheap under debug builds
    // (this pass runs over multi-million-event streams in the test suite).
    let mut max_vreg_p1 = 0usize;

    // The per-event handlers are macros, not closures: they expand inline,
    // which keeps the unoptimized (tier-1 debug test) build fast enough to
    // beat the traced replay this pass replaces.
    macro_rules! touch {
        ($r:expr) => {{
            if $r >= max_vreg_p1 {
                max_vreg_p1 = $r + 1;
            }
            if $r >= regs.len() {
                regs.resize($r + 1, RegState::default());
            }
        }};
    }
    macro_rules! do_read {
        ($r:expr, $i:expr, $consumes:expr) => {{
            let r = $r;
            summary.uses += 1;
            touch!(r);
            let st = &mut regs[r];
            if !st.written && !st.uninit_reported {
                st.uninit_reported = true;
                uninit.push(
                    &mut report,
                    format!("instruction #{}: v{r} is read before any definition", $i),
                );
            }
            st.read_since = true;
            if $consumes {
                st.dirty_acc = false;
            }
        }};
    }
    macro_rules! do_write {
        ($r:expr, $i:expr, $kind:expr) => {{
            let r = $r;
            summary.defs += 1;
            touch!(r);
            let st = &mut regs[r];
            if st.written && !st.read_since {
                let (rule, what) = if st.def_kind == DefKind::Load {
                    (&mut dead_load, "loaded value (wasted memory traffic)")
                } else {
                    (&mut dead, "computed value (discarded work)")
                };
                rule.push(
                    &mut report,
                    format!(
                        "instruction #{}: write to v{r} overwrites the {what} \
                         defined at #{} that was never read",
                        $i, st.def_at
                    ),
                );
            }
            if st.dirty_acc {
                clobber.push(
                    &mut report,
                    format!(
                        "instruction #{}: v{r} holds an unstored FMA partial sum \
                         (accumulating since #{}) and is overwritten",
                        $i, st.def_at
                    ),
                );
            }
            // A fresh (non-RMW) definition starts a new chain.
            st.dirty_acc = false;
            st.def_at = $i;
            st.def_kind = $kind;
            st.written = true;
            st.read_since = false;
        }};
    }

    for (i, ev) in stream.iter().enumerate() {
        match *ev {
            TraceEvent::VLoad { vr, .. } | TraceEvent::VGather { vr, .. } => {
                do_write!(vr, i, DefKind::Load)
            }
            TraceEvent::VZero { vr, .. } => do_write!(vr, i, DefKind::Zero),
            TraceEvent::VStore { vr, .. }
            | TraceEvent::VScatter { vr, .. }
            | TraceEvent::VReduce { vr, .. } => do_read!(vr, i, true),
            TraceEvent::VFma { acc, w, w2, .. } => {
                do_read!(acc, i, false);
                do_read!(w, i, false);
                if let Some(w2) = w2 {
                    do_read!(w2, i, false);
                }
                // RMW write-back: `acc` was just read, so the dead-write and
                // clobber checks cannot fire; the chain start is preserved.
                summary.defs += 1;
                let st = &mut regs[acc];
                st.def_kind = DefKind::Fma;
                if !st.dirty_acc {
                    st.dirty_acc = true;
                    st.def_at = i;
                }
                st.written = true;
                st.read_since = false;
            }
            _ => {}
        }
    }
    summary.max_vreg = max_vreg_p1.checked_sub(1);
    for (r, st) in regs.iter().enumerate() {
        if st.written && !st.read_since {
            let (rule, what) = if st.def_kind == DefKind::Load {
                (&mut dead_load, "loaded value (wasted memory traffic)")
            } else {
                (&mut dead, "computed value (discarded work)")
            };
            rule.push(
                &mut report,
                format!(
                    "stream ends with v{r}'s {what} defined at #{} never read",
                    st.def_at
                ),
            );
        }
        if st.dirty_acc {
            clobber.push(
                &mut report,
                format!(
                    "stream ends with v{r} holding an unstored FMA partial sum \
                     (accumulating since #{})",
                    st.def_at
                ),
            );
        }
    }

    summary.max_live = max_live_registers(stream);
    if let Some(max) = summary.max_vreg {
        if max >= n_vregs {
            pressure.push(
                &mut report,
                format!(
                    "stream touches v{max} but the register file has {n_vregs} \
                     registers (exact peak liveness: {} live at once)",
                    summary.max_live
                ),
            );
        }
    }

    uninit.finish(&mut report);
    dead.finish(&mut report);
    dead_load.finish(&mut report);
    clobber.finish(&mut report);
    pressure.finish(&mut report);
    (report, summary)
}

/// Exact peak register pressure: backward liveness scan (a register is live
/// from its definition to its last read), returning the maximum size of the
/// live set at any program point.
pub fn max_live_registers(stream: &[TraceEvent]) -> usize {
    let mut live: Vec<bool> = Vec::new();
    let mut n_live = 0usize;
    let mut max_live = 0usize;
    // At the point *before* an event: its written register is dead (unless
    // also read there — FMA's RMW keeps acc live), its read registers live.
    macro_rules! kill {
        ($r:expr) => {{
            if $r < live.len() && live[$r] {
                live[$r] = false;
                n_live -= 1;
            }
        }};
    }
    macro_rules! make_live {
        ($r:expr) => {{
            if $r >= live.len() {
                live.resize($r + 1, false);
            }
            if !live[$r] {
                live[$r] = true;
                n_live += 1;
            }
        }};
    }
    for ev in stream.iter().rev() {
        match *ev {
            TraceEvent::VLoad { vr, .. }
            | TraceEvent::VGather { vr, .. }
            | TraceEvent::VZero { vr, .. } => kill!(vr),
            TraceEvent::VStore { vr, .. }
            | TraceEvent::VScatter { vr, .. }
            | TraceEvent::VReduce { vr, .. } => make_live!(vr),
            TraceEvent::VFma { acc, w, w2, .. } => {
                // kill(acc) then make_live(acc) collapses to make_live(acc).
                make_live!(acc);
                make_live!(w);
                if let Some(w2) = w2 {
                    make_live!(w2);
                }
            }
            _ => {}
        }
        if n_live > max_live {
            max_live = n_live;
        }
    }
    max_live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::denies;

    fn vload(vr: usize) -> TraceEvent {
        TraceEvent::VLoad {
            vr,
            addr: 0x1000,
            span: 256,
            region: Some(0),
            vl: 64,
        }
    }
    fn vstore(vr: usize) -> TraceEvent {
        TraceEvent::VStore {
            vr,
            addr: 0x2000,
            span: 256,
            region: Some(1),
            vl: 64,
        }
    }
    fn vzero(vr: usize) -> TraceEvent {
        TraceEvent::VZero { vr, vl: 64 }
    }
    fn vfma(acc: usize, w: usize) -> TraceEvent {
        TraceEvent::VFma {
            acc,
            w,
            w2: None,
            vl: 64,
        }
    }

    #[test]
    fn clean_fma_chain_has_no_findings_and_exact_liveness() {
        // zero acc, load two operands, fma twice, store: 3 live at peak.
        let stream = vec![
            vzero(0),
            vload(1),
            vload(2),
            vfma(0, 1),
            vfma(0, 2),
            vstore(0),
        ];
        let (r, s) = analyze_dataflow(&stream, 64);
        assert!(r.diagnostics.is_empty(), "{r:?}");
        assert_eq!(s.max_vreg, Some(2));
        assert_eq!(s.max_live, 3);
        assert_eq!(s.defs, 5); // zero + 2 loads + 2 fma RMWs
        assert_eq!(s.uses, 5); // 2×(acc+w) + store
    }

    #[test]
    fn uninit_read_fires_once_per_register() {
        let stream = vec![vfma(0, 1), vfma(0, 1), vstore(0)];
        let (r, _) = analyze_dataflow(&stream, 64);
        assert!(denies(&r, RuleId::UninitRead), "{r:?}");
        // v0 and v1 each reported exactly once despite two uninit FMAs.
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == RuleId::UninitRead)
                .count(),
            2
        );
    }

    #[test]
    fn dead_write_denies_discarded_compute() {
        // A zeroed accumulator overwritten without ever being read is
        // discarded work: deny, both mid-stream and at stream end.
        let overwritten = vec![vzero(0), vzero(0), vload(1), vfma(0, 1), vstore(0)];
        let (r, _) = analyze_dataflow(&overwritten, 64);
        assert!(denies(&r, RuleId::DeadWrite), "{r:?}");

        let never_read = vec![vzero(0), vload(1), vfma(0, 1), vstore(0), vzero(2)];
        let (r2, _) = analyze_dataflow(&never_read, 64);
        assert!(denies(&r2, RuleId::DeadWrite), "{r2:?}");
        assert!(r2.diagnostics[0].to_string().contains("stream ends"));
    }

    #[test]
    fn dead_load_warns_but_does_not_deny() {
        // The bwd-data kernel's pipelined weight prefetch can load a tap
        // that striding never consumes: wasted bandwidth, not a bug.
        let overwritten = vec![vzero(0), vload(1), vload(1), vfma(0, 1), vstore(0)];
        let (r, _) = analyze_dataflow(&overwritten, 64);
        assert!(r.fired(RuleId::DeadWrite), "{r:?}");
        assert!(!r.has_deny(), "dead loads must not deny: {r:?}");
        assert!(r.diagnostics[0]
            .to_string()
            .contains("wasted memory traffic"));
    }

    #[test]
    fn acc_clobber_fires_on_overwrite_and_dirty_end() {
        let overwritten = vec![vzero(0), vload(1), vfma(0, 1), vzero(0), vstore(0)];
        let (r, _) = analyze_dataflow(&overwritten, 64);
        assert!(denies(&r, RuleId::AccClobber), "{r:?}");

        let dirty_end = vec![vzero(0), vload(1), vfma(0, 1)];
        let (r2, _) = analyze_dataflow(&dirty_end, 64);
        assert!(denies(&r2, RuleId::AccClobber), "{r2:?}");

        // A reduce consumes the sum just like a store.
        let reduced = vec![
            vzero(0),
            vload(1),
            vfma(0, 1),
            TraceEvent::VReduce { vr: 0, vl: 64 },
        ];
        let (r3, _) = analyze_dataflow(&reduced, 64);
        assert!(!r3.fired(RuleId::AccClobber), "{r3:?}");
    }

    #[test]
    fn reg_pressure_reports_exact_peak_liveness() {
        let stream = vec![vzero(70), vstore(70)];
        let (r, s) = analyze_dataflow(&stream, 64);
        assert!(denies(&r, RuleId::RegPressure), "{r:?}");
        assert_eq!(s.max_live, 1);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.to_string().contains("1 live at once")),
            "{r:?}"
        );
        // Same stream on a big enough file is clean.
        let (r2, _) = analyze_dataflow(&stream, 128);
        assert!(!r2.fired(RuleId::RegPressure));
    }

    #[test]
    fn liveness_counts_overlapping_ranges_not_indices() {
        // v0..v3 written then all read: 4 simultaneously live even though
        // writes are sequential.
        let stream = vec![
            vzero(0),
            vzero(1),
            vzero(2),
            vzero(3),
            vstore(0),
            vstore(1),
            vstore(2),
            vstore(3),
        ];
        assert_eq!(max_live_registers(&stream), 4);
        // Serial reuse: one at a time.
        let serial = vec![vzero(0), vstore(0), vzero(0), vstore(0)];
        assert_eq!(max_live_registers(&serial), 1);
    }
}
