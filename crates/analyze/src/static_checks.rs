//! Static verification of a `KernelConfig` against an architecture and a
//! problem: the analyzable half of the paper's model (Formulas 2-4) plus the
//! layout contracts the MBDC algorithm relies on. No kernel is executed —
//! everything here is derived from the configuration alone (the reorder
//! round-trip check runs a miniature functional probe, the cheapest way to
//! exercise the real layout arithmetic).

use crate::diagnostics::{Report, RuleId, Severity};
use lsv_arch::{formula2_rb_min, ArchParams};
use lsv_conv::analysis::set_pressure_histogram;
use lsv_conv::reorder::{reorder_activations, reorder_activations_back};
use lsv_conv::{scalar_stream_profile, Algorithm, ConvProblem, Direction, KernelConfig};
use lsv_tensor::{ActTensor, ActivationLayout};
use lsv_vengine::{Arena, ExecutionMode, VCore};

/// The combined register-block size of the accumulator set the inner loop
/// rotates through (`RB_w * RB_h` spatially, `RB_c` on the backward-weights
/// pass — the quantity Formulas 2-4 constrain).
fn combined_rb(cfg: &KernelConfig) -> usize {
    match cfg.direction {
        Direction::BwdWeights => cfg.rb_c,
        _ => cfg.rb.combined(),
    }
}

/// Vector registers the generated micro-kernel needs: accumulators plus the
/// weight double-buffer (mirrors `ConvDesc::create`'s feasibility check).
fn registers_needed(cfg: &KernelConfig) -> usize {
    match cfg.direction {
        Direction::BwdWeights => cfg.rb_c + cfg.wbuf.max(2),
        _ => cfg.rb.combined() + cfg.wbuf,
    }
}

/// Formula 3 conflict-miss lint, generalized to all three directions via the
/// scalar-stream profile, with a set-pressure explanation of *which* L1 sets
/// thrash.
///
/// Severity depends on whether the algorithm *promises* conflict-freedom for
/// the direction: DC never does (Table 3's motivating observation), and BDC
/// deliberately skips the Formula 4 cap on the backward-weights pass (the
/// paper's Section 8: register-block fine-tuning "is not as effective in this
/// direction") — both get a `Warn`. BDC on the spatially-blocked passes and
/// MBDC everywhere (line-grain layout) claim conflict-freedom by
/// construction, so a conflicting configuration broke its contract and is
/// denied.
fn check_l1_conflicts(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig, report: &mut Report) {
    let prof = scalar_stream_profile(arch, cfg, p.stride_w);
    if !prof.thrashes {
        return;
    }
    let hist = set_pressure_histogram(arch, cfg, p.stride_w);
    let ways = arch.l1d.ways;
    let overloaded: Vec<usize> = hist
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c as usize > ways)
        .map(|(s, _)| s)
        .collect();
    let worst = hist.iter().copied().max().unwrap_or(0);
    let severity = match (cfg.algorithm, cfg.direction) {
        (Algorithm::Dc, _) => Severity::Warn,
        (Algorithm::Bdc, Direction::BwdWeights) => Severity::Warn,
        (Algorithm::Bdc, _) | (Algorithm::Mbdc, _) => Severity::Deny,
    };
    report.push(
        RuleId::L1Conflict,
        severity,
        format!(
            "scalar stream thrashes the L1 (Formula 3): one register-block sweep \
             touches {} lines at stride {} B but maps into only {} sets x {} ways \
             = {} line slots; {} of {} sets are overloaded (worst set holds {} \
             lines) and every line is re-fetched each channel iteration",
            prof.footprint_lines,
            prof.stride_bytes,
            prof.distinct_sets,
            ways,
            prof.capacity_lines,
            overloaded.len(),
            arch.l1d.sets(),
            worst,
        ),
    );
}

/// Formula 4 range lint: `N_fma*L_fma/B_seq <= RB < L1/(A_b*C_str)`.
///
/// Both bounds are performance advice rather than correctness contracts
/// (`Warn`): a small block under-subscribes the FMA pipelines, a large one
/// re-enters the conflict regime that [`check_l1_conflicts`] measures.
fn check_bseq_range(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig, report: &mut Report) {
    let rb = combined_rb(cfg);
    let lower = formula2_rb_min(arch).div_ceil(arch.b_seq.max(1));
    if rb < lower {
        report.push(
            RuleId::BseqLower,
            Severity::Warn,
            format!(
                "register block {rb} is below the Formula 4 lower bound \
                 ceil(N_fma*L_fma/B_seq) = ceil({}*{}/{}) = {lower}: even with \
                 B_seq scalar instructions between FMAs the {}-deep pipelines \
                 cannot stay subscribed",
                arch.n_fma, arch.l_fma, arch.b_seq, arch.l_fma,
            ),
        );
    }
    // The conflict-free upper bound, via the same per-direction scalar-stream
    // parameters the profile uses: stride_bytes = A_b * C_str_eff * 4.
    let prof = scalar_stream_profile(arch, cfg, p.stride_w);
    if let Some(upper) = (arch.l1d.size as u64).checked_div(prof.stride_bytes) {
        let upper = upper as usize;
        if rb > upper {
            report.push(
                RuleId::BseqUpper,
                Severity::Warn,
                format!(
                    "register block {rb} exceeds the Formula 4 conflict-free upper \
                     bound L1/(A_b*C_str*4) = {}/{} = {upper}: the scalar stream's \
                     sweep no longer fits the L1 sets it maps to",
                    arch.l1d.size, prof.stride_bytes,
                ),
            );
        }
    }
}

/// Register-pressure contract: accumulators + weight buffers must fit the
/// architected vector register file. A violating kernel would index past the
/// register file — denied.
fn check_register_pressure(arch: &ArchParams, cfg: &KernelConfig, report: &mut Report) {
    let needed = registers_needed(cfg);
    if needed > arch.n_vregs {
        report.push(
            RuleId::RegPressure,
            Severity::Deny,
            format!(
                "configuration needs {needed} vector registers ({} accumulators + \
                 {} weight buffers) but the architecture has {}",
                combined_rb(cfg),
                needed - combined_rb(cfg),
                arch.n_vregs,
            ),
        );
    }
}

/// Layout contracts.
///
/// * Every algorithm: `1 <= vl <= N_vlen`, and the weights tensor's vector
///   block must equal the working vector length (the kernels load weight
///   vectors of `vl` elements unit-stride).
/// * MBDC additionally promises line-grain blocks: the activation channel
///   blocks must divide `N_cline` exactly, otherwise gather/scatter blocks
///   straddle cache lines and the banking model (and a real machine's
///   2-D vector accesses) no longer sees one line per block. A miniature
///   functional reorder round-trip validates the layout arithmetic end to
///   end.
fn check_layout_contracts(
    arch: &ArchParams,
    p: &ConvProblem,
    cfg: &KernelConfig,
    report: &mut Report,
) {
    let n_vlen = arch.n_vlen();
    if cfg.vl == 0 || cfg.vl > n_vlen {
        report.push(
            RuleId::LayoutDivide,
            Severity::Deny,
            format!(
                "working vector length {} outside the architected range [1, {n_vlen}]",
                cfg.vl
            ),
        );
        return; // the remaining checks presume a sane vl
    }
    if cfg.wei_layout.ocb != cfg.vl {
        report.push(
            RuleId::LayoutDivide,
            Severity::Deny,
            format!(
                "weights vector block OC_b = {} must equal the working vector \
                 length vl = {}: the kernel loads weight vectors unit-stride",
                cfg.wei_layout.ocb, cfg.vl
            ),
        );
    }
    if cfg.algorithm == Algorithm::Mbdc {
        let ncline = arch.n_cline();
        for (name, cb, c) in [
            ("S", cfg.src_layout.cb, p.ic),
            ("D", cfg.dst_layout.cb, p.oc),
        ] {
            // A block covering the whole channel extent (C < N_cline) is one
            // block total — nothing to straddle; otherwise blocks must tile
            // the cache line exactly.
            if cb == 0 || (!ncline.is_multiple_of(cb) && cb != c) {
                report.push(
                    RuleId::LayoutDivide,
                    Severity::Deny,
                    format!(
                        "MBDC {name} channel block C_b = {cb} does not divide \
                         N_cline = {ncline}: multi-blocks would straddle cache \
                         lines, defeating the line-grain gather/scatter layout"
                    ),
                );
            }
        }
        // Reorder round-trip probe on a miniature tensor with the real
        // channel blocking (covers tail blocks when C % C_b != 0).
        for (name, cb, c) in [
            ("S", cfg.src_layout.cb, p.ic),
            ("D", cfg.dst_layout.cb, p.oc),
        ] {
            if cb == 0 {
                continue; // already denied above
            }
            let c_probe = c.min(2 * cb + cb / 2).max(1);
            let mut arena = Arena::new();
            let mut core = VCore::new(arch, ExecutionMode::Functional, 1);
            let nchw = ActTensor::alloc(&mut arena, 1, c_probe, 2, 2, ActivationLayout::nchw());
            let blocked = ActTensor::alloc(&mut arena, 1, c_probe, 2, 2, ActivationLayout { cb });
            let back = ActTensor::alloc(&mut arena, 1, c_probe, 2, 2, ActivationLayout::nchw());
            let data: Vec<f32> = (0..nchw.elems()).map(|i| i as f32 + 0.5).collect();
            nchw.store_nchw(&mut arena, &data);
            reorder_activations(&mut core, &mut arena, &nchw, &blocked);
            reorder_activations_back(&mut core, &mut arena, &blocked, &back);
            if back.load_nchw(&arena) != data {
                report.push(
                    RuleId::LayoutDivide,
                    Severity::Deny,
                    format!(
                        "MBDC {name} layout (C_b = {cb}) fails the reorder \
                         round-trip: a {c_probe}-channel probe tensor does not \
                         survive blocked-and-back conversion"
                    ),
                );
            }
        }
    }
}

/// Run every static check of a configuration triple, returning the combined
/// report. This is the pure-analysis half of the linter; pair it with
/// [`crate::analyze_trace`] over a traced replay for the dynamic half.
pub fn analyze_config(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig) -> Report {
    let mut report = Report::new();
    check_register_pressure(arch, cfg, &mut report);
    check_layout_contracts(arch, p, cfg, &mut report);
    check_bseq_range(arch, p, cfg, &mut report);
    check_l1_conflicts(arch, p, cfg, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_conv::tuning::kernel_config;

    fn conflict_layer() -> ConvProblem {
        // Table 3 layer 8 shape: IC = 512 at 28x28 — the canonical DC
        // conflict case of Section 5.2.
        ConvProblem::new(1, 512, 128, 28, 28, 1, 1, 1, 0)
    }

    #[test]
    fn dc_conflict_layer_warns_but_is_not_denied() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 1);
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.fired(RuleId::L1Conflict), "{r:?}");
        assert!(r.fired(RuleId::BseqUpper), "{r:?}");
        assert!(
            !r.has_deny(),
            "DC conflicts are expected, not contract breaks"
        );
    }

    #[test]
    fn bdc_on_conflict_layer_is_clean() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 1);
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn forced_bdc_conflict_is_denied() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let mut cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 1);
        // Corrupt the register block past the Formula 4 upper bound (16).
        cfg.rb.rb_w = 24;
        cfg.rb.rb_h = 1;
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.fired(RuleId::L1Conflict) && r.has_deny(), "{r:?}");
    }

    #[test]
    fn undersized_register_block_fires_bseq_lower() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let mut cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 1);
        cfg.rb.rb_w = 2;
        cfg.rb.rb_h = 1;
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.fired(RuleId::BseqLower), "{r:?}");
        assert_eq!(r.count(Severity::Deny), 0);
    }

    #[test]
    fn register_overflow_is_denied() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let mut cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 1);
        cfg.rb.rb_w = 28;
        cfg.rb.rb_h = 3;
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.fired(RuleId::RegPressure) && r.has_deny(), "{r:?}");
    }

    #[test]
    fn misaligned_mbdc_block_is_denied() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let mut cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Mbdc, 1);
        cfg.src_layout.cb = 20; // does not divide N_cline = 32
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.fired(RuleId::LayoutDivide) && r.has_deny(), "{r:?}");
    }

    #[test]
    fn mismatched_weights_vector_block_is_denied() {
        let arch = sx_aurora();
        let p = conflict_layer();
        let mut cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 1);
        cfg.wei_layout.ocb = cfg.vl / 2;
        let r = analyze_config(&arch, &p, &cfg);
        assert!(r.fired(RuleId::LayoutDivide) && r.has_deny(), "{r:?}");
    }

    #[test]
    fn bwdw_configs_analyze_via_rb_c() {
        let arch = sx_aurora();
        let p = ConvProblem::new(1, 64, 256, 56, 56, 1, 1, 1, 0);
        for alg in Algorithm::ALL {
            let cfg = kernel_config(&arch, &p, Direction::BwdWeights, alg, 1);
            let r = analyze_config(&arch, &p, &cfg);
            assert!(!r.has_deny(), "{alg}: {r:?}");
        }
    }
}
