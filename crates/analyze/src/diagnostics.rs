//! Structured diagnostics: stable rule identifiers, severity levels, and
//! the report type every analysis pass appends to.

use std::fmt;

/// How severe a finding is.
///
/// The ordering is meaningful: `Note < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a property worth surfacing, not a defect.
    Note,
    /// The configuration is legal but predictably slow (e.g. a DC kernel
    /// in the Formula 3 conflict regime — the paper's Table 3 expects it).
    Warn,
    /// The configuration violates a contract: the kernel is wrong, unsafe,
    /// or breaks an invariant its algorithm promises (a BDC kernel that
    /// still thrashes, an out-of-bounds address, a clobbered accumulator).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable identifiers for every lint rule.
///
/// These are API: `results/lint.json`, the CI gate and the tests key on
/// them, so variants are append-only and the string forms never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Formula 3 (§5.2): the scalar activation stream thrashes L1 sets.
    L1Conflict,
    /// Formula 4 lower bound (§6.2): register blocking too small to hide
    /// FMA latency given `B_seq` filler instructions.
    BseqLower,
    /// Formula 4 upper bound (§6.2): register blocking so large the scalar
    /// stream re-enters the conflict regime (BDC contract).
    BseqUpper,
    /// A traced scalar/vector/gather address fell outside every tensor.
    OobAddr,
    /// An accumulator holding unsaved FMA results was overwritten.
    AccClobber,
    /// MBDC layout contract: block sizes must divide into the cache-line
    /// grain `N_cline` and reorder shapes must round-trip.
    LayoutDivide,
    /// The kernel needs more vector registers than the architecture has.
    RegPressure,
    /// The region profiler's per-region accounting does not reconcile with
    /// the core's whole-run counters (cycles, instructions or cache events).
    ProfileUnreconciled,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 8] = [
        RuleId::L1Conflict,
        RuleId::BseqLower,
        RuleId::BseqUpper,
        RuleId::OobAddr,
        RuleId::AccClobber,
        RuleId::LayoutDivide,
        RuleId::RegPressure,
        RuleId::ProfileUnreconciled,
    ];

    /// The stable string form used in reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::L1Conflict => "L1-CONFLICT",
            RuleId::BseqLower => "BSEQ-LOWER",
            RuleId::BseqUpper => "BSEQ-UPPER",
            RuleId::OobAddr => "OOB-ADDR",
            RuleId::AccClobber => "ACC-CLOBBER",
            RuleId::LayoutDivide => "LAYOUT-DIVIDE",
            RuleId::RegPressure => "REG-PRESSURE",
            RuleId::ProfileUnreconciled => "PROFILE-UNRECONCILED",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule, its severity for this occurrence, and an
/// explanation with the concrete numbers that triggered it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity of this occurrence (one rule can be `Warn` for DC but
    /// `Deny` for BDC, where the property is a contract).
    pub severity: Severity,
    /// Human-readable explanation including the violating values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.rule, self.message)
    }
}

/// The outcome of analysing one kernel configuration.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in the order the passes emitted them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, rule: RuleId, severity: Severity, message: String) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            message,
        });
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any finding denies the configuration.
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// All findings for one rule.
    pub fn by_rule(&self, rule: RuleId) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Whether `rule` fired at least once.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.by_rule(rule).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_note_warn_deny() {
        assert!(Severity::Note < Severity::Warn && Severity::Warn < Severity::Deny);
    }

    #[test]
    fn rule_ids_are_stable_strings() {
        let ids: Vec<&str> = RuleId::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            ids,
            [
                "L1-CONFLICT",
                "BSEQ-LOWER",
                "BSEQ-UPPER",
                "OOB-ADDR",
                "ACC-CLOBBER",
                "LAYOUT-DIVIDE",
                "REG-PRESSURE",
                "PROFILE-UNRECONCILED"
            ]
        );
    }

    #[test]
    fn report_aggregation() {
        let mut r = Report::new();
        assert!(!r.has_deny());
        r.push(RuleId::L1Conflict, Severity::Warn, "thrash".into());
        r.push(RuleId::OobAddr, Severity::Deny, "oob".into());
        assert!(r.has_deny());
        assert_eq!(r.count(Severity::Warn), 1);
        assert!(r.fired(RuleId::OobAddr) && !r.fired(RuleId::AccClobber));
        let mut other = Report::new();
        other.push(RuleId::RegPressure, Severity::Deny, "regs".into());
        r.merge(other);
        assert_eq!(r.diagnostics.len(), 3);
    }
}
