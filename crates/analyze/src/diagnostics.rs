//! Structured diagnostics: stable rule identifiers, severity levels, and
//! the report type every analysis pass appends to.

use std::fmt;

/// How severe a finding is.
///
/// The ordering is meaningful: `Note < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a property worth surfacing, not a defect.
    Note,
    /// The configuration is legal but predictably slow (e.g. a DC kernel
    /// in the Formula 3 conflict regime — the paper's Table 3 expects it).
    Warn,
    /// The configuration violates a contract: the kernel is wrong, unsafe,
    /// or breaks an invariant its algorithm promises (a BDC kernel that
    /// still thrashes, an out-of-bounds address, a clobbered accumulator).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable identifiers for every lint rule.
///
/// These are API: `results/lint.json`, the CI gate and the tests key on
/// them, so variants are append-only and the string forms never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Formula 3 (§5.2): the scalar activation stream thrashes L1 sets.
    L1Conflict,
    /// Formula 4 lower bound (§6.2): register blocking too small to hide
    /// FMA latency given `B_seq` filler instructions.
    BseqLower,
    /// Formula 4 upper bound (§6.2): register blocking so large the scalar
    /// stream re-enters the conflict regime (BDC contract).
    BseqUpper,
    /// A traced scalar/vector/gather address fell outside every tensor.
    OobAddr,
    /// An accumulator holding unsaved FMA results was overwritten.
    AccClobber,
    /// MBDC layout contract: block sizes must divide into the cache-line
    /// grain `N_cline` and reorder shapes must round-trip.
    LayoutDivide,
    /// The kernel needs more vector registers than the architecture has.
    RegPressure,
    /// The region profiler's per-region accounting does not reconcile with
    /// the core's whole-run counters (cycles, instructions or cache events).
    ProfileUnreconciled,
    /// A symbolically lifted access starts inside one tensor but its
    /// footprint extends into a *different* tensor's region — silent
    /// corruption of a neighbouring allocation for some minibatch index.
    RegionOverlap,
    /// An instruction's vector length is zero or exceeds the architected
    /// `MAX_VLEN` (the strip-mining class of bug, proved over the whole
    /// swept arch family instead of caught by one fuzz case).
    VlExceeds,
    /// A vector register is read before anything ever wrote it.
    UninitRead,
    /// A vector register write is overwritten (or the stream ends) without
    /// any intervening read — the kernel computed a value and discarded it.
    DeadWrite,
    /// Two cores' symbolic write sets overlap under the multicore work
    /// partitioning — a data race on the shared arena.
    RaceWriteOverlap,
    /// Adjacent cores write disjoint bytes of the same cache line at a
    /// partition boundary (correct but coherence-hostile).
    FalseSharing,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 14] = [
        RuleId::L1Conflict,
        RuleId::BseqLower,
        RuleId::BseqUpper,
        RuleId::OobAddr,
        RuleId::AccClobber,
        RuleId::LayoutDivide,
        RuleId::RegPressure,
        RuleId::ProfileUnreconciled,
        RuleId::RegionOverlap,
        RuleId::VlExceeds,
        RuleId::UninitRead,
        RuleId::DeadWrite,
        RuleId::RaceWriteOverlap,
        RuleId::FalseSharing,
    ];

    /// The stable string form used in reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::L1Conflict => "L1-CONFLICT",
            RuleId::BseqLower => "BSEQ-LOWER",
            RuleId::BseqUpper => "BSEQ-UPPER",
            RuleId::OobAddr => "OOB-ADDR",
            RuleId::AccClobber => "ACC-CLOBBER",
            RuleId::LayoutDivide => "LAYOUT-DIVIDE",
            RuleId::RegPressure => "REG-PRESSURE",
            RuleId::ProfileUnreconciled => "PROFILE-UNRECONCILED",
            RuleId::RegionOverlap => "REGION-OVERLAP",
            RuleId::VlExceeds => "VL-EXCEEDS",
            RuleId::UninitRead => "UNINIT-READ",
            RuleId::DeadWrite => "DEAD-WRITE",
            RuleId::RaceWriteOverlap => "RACE-WRITE-OVERLAP",
            RuleId::FalseSharing => "FALSE-SHARING",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule, its severity for this occurrence, and an
/// explanation with the concrete numbers that triggered it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity of this occurrence (one rule can be `Warn` for DC but
    /// `Deny` for BDC, where the property is a contract).
    pub severity: Severity,
    /// Human-readable explanation including the violating values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.rule, self.message)
    }
}

/// The outcome of analysing one kernel configuration.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in the order the passes emitted them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, rule: RuleId, severity: Severity, message: String) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            message,
        });
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any finding denies the configuration.
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// All findings for one rule.
    pub fn by_rule(&self, rule: RuleId) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Whether `rule` fired at least once.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.by_rule(rule).next().is_some()
    }

    /// The most severe finding in the report, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }
}

/// Stop describing individual findings of one rule after this many; the
/// remainder is summarized in a closing `Note` so a systematically broken
/// kernel does not produce a million-line report.
pub(crate) const MAX_FINDINGS_PER_RULE: usize = 16;

/// Tracks per-rule finding counts and enforces the reporting cap. Every
/// analysis pass (trace replay, symbolic lift, dataflow, race detector)
/// emits findings through one of these so flood behaviour is uniform.
pub(crate) struct CappedRule {
    rule: RuleId,
    severity: Severity,
    emitted: usize,
    suppressed: usize,
}

impl CappedRule {
    /// A capped emitter denying on `rule`.
    pub(crate) fn new(rule: RuleId) -> Self {
        Self::with_severity(rule, Severity::Deny)
    }

    /// A capped emitter firing `rule` at an explicit severity (the race
    /// detector's `FALSE-SHARING` warns rather than denies).
    pub(crate) fn with_severity(rule: RuleId, severity: Severity) -> Self {
        Self {
            rule,
            severity,
            emitted: 0,
            suppressed: 0,
        }
    }

    pub(crate) fn push(&mut self, report: &mut Report, message: String) {
        if self.emitted < MAX_FINDINGS_PER_RULE {
            self.emitted += 1;
            report.push(self.rule, self.severity, message);
        } else {
            self.suppressed += 1;
        }
    }

    pub(crate) fn finish(self, report: &mut Report) {
        if self.suppressed > 0 {
            report.push(
                self.rule,
                Severity::Note,
                format!(
                    "{} further {} findings suppressed after the first {}",
                    self.suppressed,
                    self.rule.as_str(),
                    self.emitted
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_note_warn_deny() {
        assert!(Severity::Note < Severity::Warn && Severity::Warn < Severity::Deny);
    }

    #[test]
    fn rule_ids_are_stable_strings() {
        let ids: Vec<&str> = RuleId::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            ids,
            [
                "L1-CONFLICT",
                "BSEQ-LOWER",
                "BSEQ-UPPER",
                "OOB-ADDR",
                "ACC-CLOBBER",
                "LAYOUT-DIVIDE",
                "REG-PRESSURE",
                "PROFILE-UNRECONCILED",
                "REGION-OVERLAP",
                "VL-EXCEEDS",
                "UNINIT-READ",
                "DEAD-WRITE",
                "RACE-WRITE-OVERLAP",
                "FALSE-SHARING"
            ]
        );
    }

    #[test]
    fn rule_registry_matches_design_doc_table() {
        // Every stable RuleId string must appear as a rule-table row in
        // DESIGN.md — the doc is the registry of record; adding a rule
        // without documenting it (or renaming one) fails here.
        let design =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
                .expect("DESIGN.md readable from the workspace root");
        for rule in RuleId::ALL {
            let row = format!("| `{}`", rule.as_str());
            assert!(
                design.contains(&row),
                "rule {} has no `{row} …` row in the DESIGN.md rule table",
                rule.as_str()
            );
        }
    }

    #[test]
    fn merge_preserves_emission_order() {
        let mut first = Report::new();
        first.push(RuleId::L1Conflict, Severity::Warn, "a".into());
        first.push(RuleId::OobAddr, Severity::Deny, "b".into());
        let mut second = Report::new();
        second.push(RuleId::RegPressure, Severity::Note, "c".into());
        second.push(RuleId::DeadWrite, Severity::Deny, "d".into());
        first.merge(second);
        let messages: Vec<&str> = first
            .diagnostics
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(
            messages,
            ["a", "b", "c", "d"],
            "merge appends, never reorders"
        );
        assert_eq!(first.by_rule(RuleId::DeadWrite).count(), 1);
    }

    #[test]
    fn max_severity_escalates_with_worst_finding() {
        let mut r = Report::new();
        assert_eq!(r.max_severity(), None);
        r.push(RuleId::FalseSharing, Severity::Note, "n".into());
        assert_eq!(r.max_severity(), Some(Severity::Note));
        r.push(RuleId::FalseSharing, Severity::Warn, "w".into());
        assert_eq!(r.max_severity(), Some(Severity::Warn));
        r.push(RuleId::RaceWriteOverlap, Severity::Deny, "d".into());
        assert_eq!(r.max_severity(), Some(Severity::Deny));
        assert!(r.has_deny());
        // A later milder finding never de-escalates the report.
        r.push(RuleId::FalseSharing, Severity::Note, "n2".into());
        assert_eq!(r.max_severity(), Some(Severity::Deny));
    }

    #[test]
    fn capped_rule_respects_severity_and_cap() {
        let mut r = Report::new();
        let mut cap = CappedRule::with_severity(RuleId::FalseSharing, Severity::Warn);
        for i in 0..MAX_FINDINGS_PER_RULE + 5 {
            cap.push(&mut r, format!("line {i}"));
        }
        cap.finish(&mut r);
        assert_eq!(r.count(Severity::Warn), MAX_FINDINGS_PER_RULE);
        assert_eq!(r.count(Severity::Note), 1, "suppression summary");
        assert!(!r.has_deny());
    }

    #[test]
    fn report_aggregation() {
        let mut r = Report::new();
        assert!(!r.has_deny());
        r.push(RuleId::L1Conflict, Severity::Warn, "thrash".into());
        r.push(RuleId::OobAddr, Severity::Deny, "oob".into());
        assert!(r.has_deny());
        assert_eq!(r.count(Severity::Warn), 1);
        assert!(r.fired(RuleId::OobAddr) && !r.fired(RuleId::AccClobber));
        let mut other = Report::new();
        other.push(RuleId::RegPressure, Severity::Deny, "regs".into());
        r.merge(other);
        assert_eq!(r.diagnostics.len(), 3);
    }
}
