//! Symbolic lift of a generated kernel: recover every memory access of the
//! instruction stream as an affine expression over the minibatch index and
//! prove bounds for **all** images at once, without simulating anything.
//!
//! The key structural fact (DESIGN.md §13) is that the generated kernels are
//! *minibatch-affine*: the instruction stream for image `n` is the stream for
//! image 0 with every activation address shifted by `n · stride_image`, where
//! `stride_image` equals the per-image slab size of the activation tensor.
//! Weight addresses do not depend on `n` at all. So one *recorded* stream at
//! `N = 1` (captured with [`lsv_vengine::VCore::new_introspect`], which
//! executes nothing) plus the per-region affine model
//! `addr(n) = base + offset + n · n_coeff` is a complete symbolic summary of
//! the kernel for every minibatch size — and because an activation region's
//! per-image stride equals its slab size, the for-all-`n` bounds proof
//! reduces to the single inequality `offset + span ≤ bytes_image`.
//!
//! [`check_stream`] evaluates three rules over that model:
//!
//! * `OOB-ADDR` — an access (at some minibatch index) falls outside every
//!   modelled region, proved rather than observed.
//! * `REGION-OVERLAP` — an access overruns its region *into another live
//!   region* (silent corruption the traced sanitizer can only catch when the
//!   victim region happens to be mapped); reported separately because the
//!   fix is different (layout/stride bug, not a loop-bound bug).
//! * `VL-EXCEEDS` — a vector instruction's operating length exceeds the
//!   architected `n_vlen` (or is zero). Swept statically over the whole
//!   `{512..16384}` bit arch family by [`crate::analyze_kernel_swept`].

use crate::diagnostics::{CappedRule, Report, RuleId, Severity};
use lsv_arch::ArchParams;
use lsv_conv::multicore::partition_ranges;
use lsv_conv::{ConvDesc, ConvProblem, Direction, KernelConfig};
use lsv_vengine::{Arena, TraceEvent, VCore};
use std::ops::Range;

/// Affine model of one arena region: an access recorded at offset `o` with
/// span `s` touches `[base + o + n·n_coeff, base + o + s + n·n_coeff)` for
/// every minibatch index `n < n_full`.
#[derive(Debug, Clone)]
pub struct RegionModel {
    /// Position in [`Arena::regions`] order (trace events carry this index).
    pub index: usize,
    /// Human-readable allocation label (`"act src ..."`, `"wei ..."`).
    pub label: String,
    /// First byte of the region in the recording arena.
    pub base: u64,
    /// Extent of the region *in the recording arena* (one image for
    /// activation tensors, the full tensor for weights).
    pub bytes_image: u64,
    /// Per-minibatch-index address stride: the activation slab size for
    /// n-dependent regions, 0 for weights and other shared data.
    pub n_coeff: u64,
    /// Extent of the region at the full minibatch
    /// (`bytes_image + (n_full − 1) · n_coeff`).
    pub bytes_full: u64,
}

impl RegionModel {
    /// Model for a minibatch-scaled activation region: per-image slab of
    /// `bytes_image` bytes, images laid out contiguously.
    pub fn minibatch_scaled(
        index: usize,
        label: &str,
        base: u64,
        bytes_image: u64,
        n_full: usize,
    ) -> Self {
        RegionModel {
            index,
            label: label.to_string(),
            base,
            bytes_image,
            n_coeff: bytes_image,
            bytes_full: bytes_image * n_full.max(1) as u64,
        }
    }

    /// Model for an n-independent (shared) region such as the weights.
    pub fn shared(index: usize, label: &str, base: u64, bytes: u64) -> Self {
        RegionModel {
            index,
            label: label.to_string(),
            base,
            bytes_image: bytes,
            n_coeff: 0,
            bytes_full: bytes,
        }
    }

    /// End of the region in the recording arena.
    pub fn end_image(&self) -> u64 {
        self.base + self.bytes_image
    }
}

/// Which work partitioning the multicore executor applies to this kernel —
/// mirrors [`lsv_conv::execute_multicore`] exactly because both sides call
/// [`partition_ranges`].
#[derive(Debug, Clone)]
pub enum PartitionModel {
    /// Fwd / BwdData: minibatch images split across cores; every core runs
    /// the same stream shifted by its image range.
    Minibatch(Vec<Range<usize>>),
    /// BwdWeights: the small feature-map dimension's blocks split across
    /// cores; every core walks the whole minibatch.
    SmallBlocks(Vec<Range<usize>>),
}

/// A symbolic summary of one generated kernel: the recorded instruction
/// stream(s), the per-region affine models, and the multicore partitioning.
#[derive(Debug)]
pub struct KernelLift {
    /// Region models in arena order (`regions[i].index == i`).
    pub regions: Vec<RegionModel>,
    /// Recorded instruction streams. One stream for Minibatch-partitioned
    /// kernels (all cores execute it, shifted); one per core range for
    /// SmallBlocks kernels (each core executes a different block slice).
    pub streams: Vec<Vec<TraceEvent>>,
    /// The multicore work split the race detector reasons about.
    pub partition: PartitionModel,
    /// Full minibatch of the original problem (the recording uses `N = 1`).
    pub n_full: usize,
    /// False when the stream touched an arena region the lift cannot
    /// attribute to `src`/`dst`/`wei` — the affine model is then incomplete
    /// and the caller must fall back to a traced replay.
    pub conclusive: bool,
}

/// Interval/stride summary of the accesses one stream makes to one region —
/// the abstract domain the bounds and race proofs quote in messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSummary {
    /// Region index the accesses hit.
    pub region: usize,
    /// True for stores/scatters, false for loads/gathers.
    pub write: bool,
    /// Number of accesses.
    pub count: u64,
    /// Lowest address touched.
    pub lo: u64,
    /// One past the highest address touched.
    pub hi: u64,
    /// Smallest non-zero distance between consecutive access start offsets,
    /// if any two accesses differ.
    pub min_stride: Option<u64>,
}

/// Memory footprint of one event relative to the region models: returns
/// `(what, region_index, addr, span, is_write)` for memory events in-bounds
/// of *some* region; events with `region: None` are handled by the caller.
pub(crate) fn footprint(ev: &TraceEvent) -> Option<(&'static str, Option<usize>, u64, u64, bool)> {
    let (what, region, addr, span, write) = match *ev {
        TraceEvent::ScalarLoad { addr, region } => ("scalar load", region, addr, 4, false),
        TraceEvent::ScalarStore { addr, region } => ("scalar store", region, addr, 4, true),
        TraceEvent::VLoad {
            addr, span, region, ..
        } => ("vector load", region, addr, span, false),
        TraceEvent::VStore {
            addr, span, region, ..
        } => ("vector store", region, addr, span, true),
        TraceEvent::VGather {
            addr, span, region, ..
        } => ("vector gather", region, addr, span, false),
        TraceEvent::VScatter {
            addr, span, region, ..
        } => ("vector scatter", region, addr, span, true),
        _ => return None,
    };
    Some((what, region.map(|r| r as usize), addr, span, write))
}

/// Operating vector length of a vector event, `None` for scalar events.
pub(crate) fn vector_length(ev: &TraceEvent) -> Option<usize> {
    match *ev {
        TraceEvent::VLoad { vl, .. }
        | TraceEvent::VStore { vl, .. }
        | TraceEvent::VZero { vl, .. }
        | TraceEvent::VFma { vl, .. }
        | TraceEvent::VReduce { vl, .. }
        | TraceEvent::VGather { vl, .. }
        | TraceEvent::VScatter { vl, .. } => Some(vl),
        _ => None,
    }
}

/// Summarize a stream's accesses per `(region, read/write)` class. Order of
/// first touch is preserved.
pub fn summarize_accesses(stream: &[TraceEvent]) -> Vec<AccessSummary> {
    let mut out: Vec<AccessSummary> = Vec::new();
    let mut last_lo: Vec<Option<u64>> = Vec::new();
    for ev in stream {
        let Some((_, Some(region), addr, span, write)) = footprint(ev) else {
            continue;
        };
        let pos = out
            .iter()
            .position(|s| s.region == region && s.write == write);
        let pos = match pos {
            Some(p) => p,
            None => {
                out.push(AccessSummary {
                    region,
                    write,
                    count: 0,
                    lo: u64::MAX,
                    hi: 0,
                    min_stride: None,
                });
                last_lo.push(None);
                out.len() - 1
            }
        };
        let s = &mut out[pos];
        s.count += 1;
        s.lo = s.lo.min(addr);
        s.hi = s.hi.max(addr + span);
        if let Some(prev) = last_lo[pos] {
            let d = addr.abs_diff(prev);
            if d != 0 {
                s.min_stride = Some(s.min_stride.map_or(d, |m| m.min(d)));
            }
        }
        last_lo[pos] = Some(addr);
    }
    out
}

/// Prove the bounds and vector-length rules over one recorded stream.
///
/// `regions` must be indexed by arena order ([`RegionModel::index`] equal to
/// the vector position); `n_full` is the minibatch the proof quantifies
/// over; `n_vlen` the architected maximum vector length in elements.
pub fn check_stream(
    stream: &[TraceEvent],
    regions: &[RegionModel],
    n_full: usize,
    n_vlen: usize,
) -> Report {
    let mut report = Report::new();
    let mut oob = CappedRule::new(RuleId::OobAddr);
    let mut overlap = CappedRule::new(RuleId::RegionOverlap);
    let mut vl_rule = CappedRule::new(RuleId::VlExceeds);

    for (i, ev) in stream.iter().enumerate() {
        if let Some(vl) = vector_length(ev) {
            if vl == 0 || vl > n_vlen {
                vl_rule.push(
                    &mut report,
                    format!(
                        "instruction #{i}: vector length {vl} outside the architected \
                         range [1, {n_vlen}] — illegal on this arch for every input"
                    ),
                );
            }
        }
        let Some((what, region, addr, span, _)) = footprint(ev) else {
            continue;
        };
        let Some(region) = region else {
            oob.push(
                &mut report,
                format!(
                    "instruction #{i}: {what} of {span} bytes at {addr:#x} hits no \
                     allocation (proved for every minibatch index)"
                ),
            );
            continue;
        };
        let Some(m) = regions.get(region) else {
            // Region the lift could not model: the caller marked the lift
            // inconclusive; nothing provable here.
            continue;
        };
        debug_assert_eq!(m.index, region);
        let offset = addr.saturating_sub(m.base);
        // Affine bound for all n: offset + span + n·n_coeff ≤ bytes_image +
        // n·n_coeff  ⇔  offset + span ≤ bytes_image (the per-image slab IS
        // the stride for n-scaled regions, the whole region for shared ones).
        if offset + span <= m.bytes_image {
            continue;
        }
        let spill_lo = m.end_image();
        let spill_hi = addr + span;
        let victim = regions
            .iter()
            .find(|o| o.index != m.index && o.base < spill_hi && spill_lo < o.base + o.bytes_image);
        let for_all = if m.n_coeff != 0 && n_full > 1 {
            format!(
                " (affine lift: offset + n·{}, proved for all {n_full} images)",
                m.n_coeff
            )
        } else {
            String::new()
        };
        match victim {
            Some(v) => overlap.push(
                &mut report,
                format!(
                    "instruction #{i}: {what} of {span} bytes at offset {offset:#x} of \
                     region `{}` overruns into live region `{}`{for_all}",
                    m.label, v.label
                ),
            ),
            None => oob.push(
                &mut report,
                format!(
                    "instruction #{i}: {what} of {span} bytes at offset {offset:#x} \
                     overruns region `{}` ({} bytes) by {} bytes{for_all}",
                    m.label,
                    m.bytes_image,
                    offset + span - m.bytes_image
                ),
            ),
        }
    }
    oob.finish(&mut report);
    overlap.finish(&mut report);
    vl_rule.finish(&mut report);
    report
}

/// Build the per-region affine models for a kernel's tensors: activation
/// regions scale with the minibatch index, the weights region is shared.
/// Returns `(models, conclusive)`; `conclusive` is false if the arena holds
/// a region that is none of `src`/`dst`/`wei`.
pub fn region_models(
    arena: &Arena,
    t: &lsv_conv::ConvTensors,
    n_full: usize,
) -> (Vec<RegionModel>, bool) {
    let mut conclusive = true;
    let models = arena
        .regions()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if r.base == t.src.base || r.base == t.dst.base {
                RegionModel::minibatch_scaled(i, &r.label, r.base, r.bytes, n_full)
            } else if r.base == t.wei.base {
                RegionModel::shared(i, &r.label, r.base, r.bytes)
            } else {
                conclusive = false;
                RegionModel::shared(i, &r.label, r.base, r.bytes)
            }
        })
        .collect();
    (models, conclusive)
}

/// Record a kernel's instruction stream(s) without executing them and build
/// the symbolic model: introspection-mode "run" at `N = 1` (no functional
/// state, no timing, no cache — just the generator's emitted stream), plus
/// region models and the multicore partition.
///
/// For Minibatch-partitioned kernels one stream summarizes every core and
/// image; for the bwd-weights SmallBlocks split each core range is recorded
/// separately because cores execute *different* block slices.
pub fn lift_kernel(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig) -> KernelLift {
    let cores = arch.cores.max(1);
    let p1 = p.with_minibatch(1);
    let desc = ConvDesc::new(p1, cfg.direction, cfg.algorithm);
    let prim = desc.create_with_config(arch, *cfg, 1);
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let (regions, conclusive) = region_models(&arena, &t, p.n);

    let (streams, partition) = match cfg.direction {
        Direction::Fwd | Direction::BwdData => {
            let mut core = VCore::new_introspect(arch);
            prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..0);
            let stream = core.take_trace().expect("introspect cores always trace");
            (
                vec![stream],
                PartitionModel::Minibatch(partition_ranges(p.n, cores)),
            )
        }
        Direction::BwdWeights => {
            let ranges = partition_ranges(prim.bwdw_small_blocks(), cores);
            let mut core = VCore::new_introspect(arch);
            let mut streams = Vec::with_capacity(ranges.len());
            for r in &ranges {
                prim.execute_core(&mut core, &mut arena, &t, 0..1, r.clone());
                streams.push(core.take_trace().expect("introspect cores always trace"));
            }
            (streams, PartitionModel::SmallBlocks(ranges))
        }
    };
    KernelLift {
        regions,
        streams,
        partition,
        n_full: p.n,
        conclusive,
    }
}

/// True when `report` carries a `Deny` finding for `rule`.
pub fn denies(report: &Report, rule: RuleId) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| d.rule == rule && d.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions_fixture() -> Vec<RegionModel> {
        vec![
            // act src: 4096-byte image slab, 4 images.
            RegionModel::minibatch_scaled(0, "act src", 0x1000, 4096, 4),
            // act dst: adjacent slab.
            RegionModel::minibatch_scaled(1, "act dst", 0x2000, 4096, 4),
            // weights: shared, far away.
            RegionModel::shared(2, "wei", 0x10000, 8192),
        ]
    }

    fn vload(addr: u64, span: u64, region: Option<u32>, vl: usize) -> TraceEvent {
        TraceEvent::VLoad {
            vr: 0,
            addr,
            span,
            region,
            vl,
        }
    }

    #[test]
    fn in_slab_accesses_are_clean_for_all_images() {
        let regions = regions_fixture();
        let stream = vec![
            vload(0x1000, 4096, Some(0), 64),
            TraceEvent::VStore {
                vr: 1,
                addr: 0x2000 + 4000,
                span: 96,
                region: Some(1),
                vl: 24,
            },
            vload(0x10000 + 8000, 192, Some(2), 48),
        ];
        let r = check_stream(&stream, &regions, 4, 64);
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn slab_overrun_into_neighbor_is_region_overlap() {
        let regions = regions_fixture();
        // Crosses from the last bytes of src's image slab into dst.
        let stream = vec![vload(0x1000 + 4090, 16, Some(0), 4)];
        let r = check_stream(&stream, &regions, 4, 64);
        assert!(denies(&r, RuleId::RegionOverlap), "{r:?}");
        assert!(!r.fired(RuleId::OobAddr));
        let msg = r.diagnostics[0].to_string();
        assert!(msg.contains("act src") && msg.contains("act dst"), "{msg}");
        assert!(msg.contains("all 4 images"), "{msg}");
    }

    #[test]
    fn overrun_into_unmapped_space_is_oob() {
        let regions = regions_fixture();
        // Overruns the weights region into nothing.
        let stream = vec![vload(0x10000 + 8190, 64, Some(2), 16)];
        let r = check_stream(&stream, &regions, 4, 64);
        assert!(denies(&r, RuleId::OobAddr), "{r:?}");
        assert!(!r.fired(RuleId::RegionOverlap));
    }

    #[test]
    fn unmapped_address_is_oob_for_every_image() {
        let regions = regions_fixture();
        let stream = vec![vload(0x9999_0000, 256, None, 64)];
        let r = check_stream(&stream, &regions, 4, 64);
        assert!(denies(&r, RuleId::OobAddr), "{r:?}");
        assert!(
            r.diagnostics[0]
                .to_string()
                .contains("every minibatch index"),
            "{:?}",
            r.diagnostics[0]
        );
    }

    #[test]
    fn vl_exceeds_fires_on_overlong_and_zero_lengths() {
        let regions = regions_fixture();
        let stream = vec![
            vload(0x1000, 256, Some(0), 65),
            TraceEvent::VZero { vr: 0, vl: 0 },
        ];
        let r = check_stream(&stream, &regions, 1, 64);
        assert!(denies(&r, RuleId::VlExceeds), "{r:?}");
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == RuleId::VlExceeds)
                .count(),
            2
        );
        // Legal lengths stay clean.
        let clean = check_stream(&[vload(0x1000, 256, Some(0), 64)], &regions, 1, 64);
        assert!(!clean.fired(RuleId::VlExceeds));
    }

    #[test]
    fn access_summaries_capture_interval_and_stride() {
        let stream = vec![
            vload(0x1000, 64, Some(0), 16),
            vload(0x1100, 64, Some(0), 16),
            vload(0x1080, 64, Some(0), 16),
            TraceEvent::VStore {
                vr: 0,
                addr: 0x2000,
                span: 32,
                region: Some(1),
                vl: 8,
            },
        ];
        let s = summarize_accesses(&stream);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].region, 0);
        assert!(!s[0].write);
        assert_eq!(s[0].count, 3);
        assert_eq!((s[0].lo, s[0].hi), (0x1000, 0x1140));
        assert_eq!(s[0].min_stride, Some(0x80));
        assert!(s[1].write);
        assert_eq!(s[1].count, 1);
        assert_eq!(s[1].min_stride, None);
    }
}
