//! # lsv-analyze — static kernel verifier and lint framework
//!
//! The simulator stack generates convolution kernels from a
//! [`lsv_conv::KernelConfig`]; this crate proves properties *about* those
//! kernels without trusting the generator:
//!
//! * **Static checks** ([`analyze_config`]) evaluate the paper's analytical
//!   model against a configuration triple: Formula 3 conflict prediction
//!   (`L1-CONFLICT`, explaining which cache sets thrash), the Formula 4
//!   register-block range (`BSEQ-LOWER` / `BSEQ-UPPER`), register pressure
//!   (`REG-PRESSURE`) and the MBDC layout contracts (`LAYOUT-DIVIDE`).
//! * **Dynamic checks** ([`analyze_trace`]) lint a recorded instruction
//!   stream: the address-stream bounds sanitizer (`OOB-ADDR`) and the
//!   accumulator-hazard analysis (`ACC-CLOBBER`).
//! * [`analyze_kernel`] combines both: it replays the generated kernel for a
//!   single image in trace-recording timing-only mode and merges the static
//!   and dynamic reports.
//!
//! Findings carry a stable [`RuleId`] and a [`Severity`]; `Deny` means the
//! configuration is wrong (out-of-bounds addresses, discarded partial sums,
//! broken layout contracts), `Warn` means the model predicts it is slow
//! (conflict misses, under-subscribed pipelines). The
//! [`deny_validator`] adapter plugs the linter into
//! [`lsv_conv::ConvDesc::create_validated`] so the tuner's output can be
//! rejected at primitive-creation time.

pub mod diagnostics;
pub mod profile_checks;
pub mod static_checks;
pub mod trace_checks;

pub use diagnostics::{Diagnostic, Report, RuleId, Severity};
pub use profile_checks::check_profile_reconciliation;
pub use static_checks::analyze_config;

use lsv_arch::ArchParams;
use lsv_conv::{ConvDesc, ConvPrimitive, ConvProblem, KernelConfig, UnsupportedReason};
use lsv_vengine::{Arena, ExecutionMode, TraceEvent, VCore};

/// Lint a recorded instruction stream against the arena it executed in.
/// Thin re-export wrapper fixing the register-file bound to the
/// architecture's.
pub fn analyze_trace(arena: &Arena, trace: &[TraceEvent], arch: &ArchParams) -> Report {
    trace_checks::analyze_trace(arena, trace, arch.n_vregs)
}

/// Full analysis of one kernel: static checks, then — if nothing was
/// statically denied — a traced single-image replay feeding the dynamic
/// checks.
///
/// The replay clones the problem with `N = 1`: the configuration is
/// independent of the minibatch (the tuner never reads `N`), every image
/// executes the identical instruction stream modulo the base offset, and a
/// single image bounds the trace to a few hundred MB even for the largest
/// Table 3 layer. The replay runs in [`ExecutionMode::TimingOnly`], where
/// loads do not dereference the arena — so an out-of-bounds address is
/// *recorded* (and reported as `OOB-ADDR`) instead of crashing the replay.
///
/// A statically denied configuration is not replayed: the generator's own
/// preconditions (register file size, layout divisibility) no longer hold,
/// so a replay would panic rather than lint.
pub fn analyze_kernel(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig) -> Report {
    let mut report = analyze_config(arch, p, cfg);
    if report.has_deny() {
        return report;
    }
    let p1 = p.with_minibatch(1);
    let desc = ConvDesc::new(p1, cfg.direction, cfg.algorithm);
    let prim = desc.create_with_config(arch, *cfg, 1);
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let mut core = VCore::new(arch, ExecutionMode::TimingOnly, 1);
    core.enable_trace();
    prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..prim.bwdw_small_blocks());
    let trace = core.trace().expect("trace was enabled");
    report.merge(trace_checks::analyze_trace(&arena, trace, arch.n_vregs));
    report
}

/// Validator closure body for [`ConvDesc::create_validated`]: runs the full
/// analysis and rejects on any `Deny`, summarizing the denying diagnostics
/// in the error string.
pub fn deny_validator(
    arch: &ArchParams,
    p: &ConvProblem,
    cfg: &KernelConfig,
) -> Result<(), String> {
    let report = analyze_kernel(arch, p, cfg);
    if !report.has_deny() {
        return Ok(());
    }
    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .map(|d| d.to_string())
        .collect();
    Err(denies.join("; "))
}

/// Convenience: create a primitive and gate it on the linter in one call —
/// `desc.create(...)` followed by [`deny_validator`] on the tuned
/// configuration, with rejection surfacing as
/// [`UnsupportedReason::Rejected`].
pub fn create_checked(
    desc: &ConvDesc,
    arch: &ArchParams,
    threads: usize,
) -> Result<ConvPrimitive, UnsupportedReason> {
    desc.create_validated(arch, threads, &deny_validator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::sx_aurora;
    use lsv_conv::{Algorithm, Direction};

    #[test]
    fn tuned_kernels_replay_clean_end_to_end() {
        let arch = sx_aurora();
        // Small but representative: strided conv with padding, all three
        // algorithms and directions through the full static + dynamic path.
        let p = ConvProblem::new(2, 16, 24, 14, 14, 3, 3, 2, 1);
        for alg in Algorithm::ALL {
            for dir in Direction::ALL {
                let cfg = lsv_conv::tuning::kernel_config(&arch, &p, dir, alg, 1);
                let r = analyze_kernel(&arch, &p, &cfg);
                assert!(!r.has_deny(), "{alg}/{dir:?}: {r:?}");
            }
        }
    }

    #[test]
    fn create_checked_accepts_tuned_and_rejects_corrupt() {
        let arch = sx_aurora();
        let p = ConvProblem::new(1, 32, 32, 8, 8, 3, 3, 1, 1);
        let desc = ConvDesc::new(p, Direction::Fwd, Algorithm::Mbdc);
        assert!(create_checked(&desc, &arch, 1).is_ok());

        // A validator that rejects everything exercises the Rejected path.
        let always_no = |_: &ArchParams, _: &ConvProblem, _: &KernelConfig| Err("nope".to_string());
        match desc.create_validated(&arch, 1, &always_no) {
            Err(UnsupportedReason::Rejected { why }) => assert_eq!(why, "nope"),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn statically_denied_config_skips_replay() {
        let arch = sx_aurora();
        let p = ConvProblem::new(1, 32, 32, 8, 8, 1, 1, 1, 0);
        let mut cfg = lsv_conv::tuning::kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 1);
        cfg.rb.rb_w = 100; // blows the register file; replay would panic
        let r = analyze_kernel(&arch, &p, &cfg);
        assert!(r.fired(RuleId::RegPressure) && r.has_deny());
        assert!(deny_validator(&arch, &p, &cfg).is_err());
    }
}
