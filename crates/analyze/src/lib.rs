//! # lsv-analyze — static kernel verifier and lint framework
//!
//! The simulator stack generates convolution kernels from a
//! [`lsv_conv::KernelConfig`]; this crate proves properties *about* those
//! kernels without trusting the generator:
//!
//! * **Static checks** ([`analyze_config`]) evaluate the paper's analytical
//!   model against a configuration triple: Formula 3 conflict prediction
//!   (`L1-CONFLICT`, explaining which cache sets thrash), the Formula 4
//!   register-block range (`BSEQ-LOWER` / `BSEQ-UPPER`), register pressure
//!   (`REG-PRESSURE`) and the MBDC layout contracts (`LAYOUT-DIVIDE`).
//! * **Dynamic checks** ([`analyze_trace`]) lint a recorded instruction
//!   stream: the address-stream bounds sanitizer (`OOB-ADDR`) and the
//!   accumulator-hazard analysis (`ACC-CLOBBER`).
//! * [`analyze_kernel`] combines both: it replays the generated kernel for a
//!   single image in trace-recording timing-only mode and merges the static
//!   and dynamic reports.
//!
//! Findings carry a stable [`RuleId`] and a [`Severity`]; `Deny` means the
//! configuration is wrong (out-of-bounds addresses, discarded partial sums,
//! broken layout contracts), `Warn` means the model predicts it is slow
//! (conflict misses, under-subscribed pipelines). The
//! [`deny_validator`] adapter plugs the linter into
//! [`lsv_conv::ConvDesc::create_validated`] so the tuner's output can be
//! rejected at primitive-creation time.

pub mod dataflow;
pub mod diagnostics;
pub mod profile_checks;
pub mod race_checks;
pub mod static_checks;
pub mod symbolic;
pub mod trace_checks;

pub use dataflow::{analyze_dataflow, DataflowSummary};
pub use diagnostics::{Diagnostic, Report, RuleId, Severity};
pub use profile_checks::check_profile_reconciliation;
pub use race_checks::check_races;
pub use static_checks::analyze_config;
pub use symbolic::{check_stream, lift_kernel, KernelLift, PartitionModel, RegionModel};

use lsv_arch::ArchParams;
use lsv_conv::{ConvDesc, ConvPrimitive, ConvProblem, KernelConfig, UnsupportedReason};
use lsv_vengine::{Arena, ExecutionMode, TraceEvent, VCore};

/// Lint a recorded instruction stream against the arena it executed in.
/// Thin re-export wrapper fixing the register-file bound to the
/// architecture's.
pub fn analyze_trace(arena: &Arena, trace: &[TraceEvent], arch: &ArchParams) -> Report {
    trace_checks::analyze_trace(arena, trace, arch.n_vregs)
}

/// Result of [`analyze_kernel_outcome`]: the merged report plus how it was
/// obtained.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// Merged findings.
    pub report: Report,
    /// True when a simulated traced replay ran (only on the inconclusive
    /// fallback path — the clean static path never replays).
    pub replayed: bool,
    /// True when the symbolic lift modelled every touched arena region.
    pub conclusive: bool,
}

/// Static-only analysis: configuration checks, then the symbolic lift
/// ([`symbolic::lift_kernel`]) feeding the bounds/vector-length proofs
/// ([`symbolic::check_stream`]), the register dataflow
/// ([`dataflow::analyze_dataflow`]) and the multicore race detector
/// ([`race_checks::check_races`]). Nothing is simulated: the kernel's
/// instruction stream is *recorded* in introspection mode (no functional,
/// timing or cache state) and every verdict is proved over all minibatch
/// indices from the affine region models.
///
/// Returns `(report, conclusive)`; `conclusive = false` means the stream
/// touched an arena region the lift cannot attribute to `src`/`dst`/`wei`,
/// so the bounds proof is incomplete and callers should fall back to the
/// traced replay ([`analyze_kernel_replay`]).
pub fn analyze_kernel_static(
    arch: &ArchParams,
    p: &ConvProblem,
    cfg: &KernelConfig,
) -> (Report, bool) {
    let mut report = analyze_config(arch, p, cfg);
    if report.has_deny() {
        // Generator preconditions broken: the kernel cannot even be built,
        // so there is no stream to lift — the static verdict is final.
        return (report, true);
    }
    let lift = symbolic::lift_kernel(arch, p, cfg);
    for stream in &lift.streams {
        report.merge(symbolic::check_stream(
            stream,
            &lift.regions,
            lift.n_full,
            arch.n_vlen(),
        ));
        let (df, _) = dataflow::analyze_dataflow(stream, arch.n_vregs);
        report.merge(df);
    }
    report.merge(race_checks::check_races(&lift, arch));
    (report, lift.conclusive)
}

/// The pre-PR6 dynamic path: a traced single-image replay in
/// [`ExecutionMode::TimingOnly`] feeding [`trace_checks::analyze_trace`].
/// Kept as the differential cross-check for the symbolic analyzer (see
/// [`verdict_agreement`]) and as the fallback when the lift is
/// inconclusive.
///
/// The replay clones the problem with `N = 1`: the configuration is
/// independent of the minibatch (the tuner never reads `N`), every image
/// executes the identical instruction stream modulo the base offset, and a
/// single image bounds the trace to a few hundred MB even for the largest
/// Table 3 layer. Loads do not dereference the arena in timing-only mode —
/// an out-of-bounds address is *recorded* (and reported as `OOB-ADDR`)
/// instead of crashing the replay.
pub fn analyze_kernel_replay(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig) -> Report {
    let mut report = analyze_config(arch, p, cfg);
    if report.has_deny() {
        return report;
    }
    report.merge(traced_replay(arch, p, cfg));
    report
}

fn traced_replay(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig) -> Report {
    let p1 = p.with_minibatch(1);
    let desc = ConvDesc::new(p1, cfg.direction, cfg.algorithm);
    let prim = desc.create_with_config(arch, *cfg, 1);
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let mut core = VCore::new(arch, ExecutionMode::TimingOnly, 1);
    core.enable_trace();
    prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..prim.bwdw_small_blocks());
    let trace = core.trace().expect("trace was enabled");
    trace_checks::analyze_trace(&arena, trace, arch.n_vregs)
}

/// Full analysis, static-first: the symbolic path decides; the simulated
/// replay runs *only* when the lift is inconclusive and nothing was denied
/// statically. [`AnalysisOutcome::replayed`] records which path ran so
/// callers (lint-kernels `--static`, tests) can assert the clean path never
/// simulates.
pub fn analyze_kernel_outcome(
    arch: &ArchParams,
    p: &ConvProblem,
    cfg: &KernelConfig,
) -> AnalysisOutcome {
    let (mut report, conclusive) = analyze_kernel_static(arch, p, cfg);
    let mut replayed = false;
    if !conclusive && !report.has_deny() {
        report.merge(traced_replay(arch, p, cfg));
        replayed = true;
    }
    AnalysisOutcome {
        report,
        replayed,
        conclusive,
    }
}

/// Full analysis of one kernel — static-first since PR 6 (symbolic lift +
/// dataflow + race detector), with the traced replay only as an
/// inconclusive-lift fallback. See [`analyze_kernel_outcome`] for the
/// which-path-ran metadata.
pub fn analyze_kernel(arch: &ArchParams, p: &ConvProblem, cfg: &KernelConfig) -> Report {
    analyze_kernel_outcome(arch, p, cfg).report
}

/// Statically analyze the kernel the tuner would generate for `p` on every
/// architecture of the swept vector-length family (the fuzz harness's
/// `{512..16384}` bit sweep). Proves `VL-EXCEEDS` legality — and everything
/// else the static path checks — across the whole family without a single
/// simulation.
pub fn analyze_kernel_swept(
    p: &ConvProblem,
    dir: lsv_conv::Direction,
    alg: lsv_conv::Algorithm,
) -> Vec<(usize, Report)> {
    lsv_conv::fuzz::VLEN_SWEEP_BITS
        .iter()
        .map(|&bits| {
            let arch = lsv_arch::aurora_with_vlen_bits(bits);
            let cfg = lsv_conv::tuning::kernel_config(&arch, p, dir, alg, 1);
            (bits, analyze_kernel_static(&arch, p, &cfg).0)
        })
        .collect()
}

/// Differential oracle: the symbolic analyzer and the traced replay must
/// agree on the deny verdict of every rule both can express (`OOB-ADDR`,
/// `ACC-CLOBBER`). Returns a description of the first disagreement. Used as
/// a fuzz property ([`lsv_conv::fuzz`] `--agreement`) so the analyzer is
/// itself fuzzed.
pub fn verdict_agreement(
    arch: &ArchParams,
    p: &ConvProblem,
    cfg: &KernelConfig,
) -> Result<(), String> {
    let (symbolic, _) = analyze_kernel_static(arch, p, cfg);
    let replay = analyze_kernel_replay(arch, p, cfg);
    for rule in [RuleId::OobAddr, RuleId::AccClobber] {
        let s = symbolic::denies(&symbolic, rule);
        let r = symbolic::denies(&replay, rule);
        if s != r {
            return Err(format!(
                "{} verdict disagreement: symbolic={s}, replay={r} (symbolic: {symbolic:?})",
                rule.as_str()
            ));
        }
    }
    Ok(())
}

/// Validator closure body for [`ConvDesc::create_validated`]: runs the full
/// analysis and rejects on any `Deny`, summarizing the denying diagnostics
/// in the error string.
pub fn deny_validator(
    arch: &ArchParams,
    p: &ConvProblem,
    cfg: &KernelConfig,
) -> Result<(), String> {
    let report = analyze_kernel(arch, p, cfg);
    if !report.has_deny() {
        return Ok(());
    }
    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .map(|d| d.to_string())
        .collect();
    Err(denies.join("; "))
}

/// Convenience: create a primitive and gate it on the linter in one call —
/// `desc.create(...)` followed by [`deny_validator`] on the tuned
/// configuration, with rejection surfacing as
/// [`UnsupportedReason::Rejected`].
pub fn create_checked(
    desc: &ConvDesc,
    arch: &ArchParams,
    threads: usize,
) -> Result<ConvPrimitive, UnsupportedReason> {
    desc.create_validated(arch, threads, &deny_validator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::sx_aurora;
    use lsv_conv::{Algorithm, Direction};

    #[test]
    fn tuned_kernels_replay_clean_end_to_end() {
        let arch = sx_aurora();
        // Small but representative: strided conv with padding, all three
        // algorithms and directions through the full static + dynamic path.
        let p = ConvProblem::new(2, 16, 24, 14, 14, 3, 3, 2, 1);
        for alg in Algorithm::ALL {
            for dir in Direction::ALL {
                let cfg = lsv_conv::tuning::kernel_config(&arch, &p, dir, alg, 1);
                let r = analyze_kernel(&arch, &p, &cfg);
                assert!(!r.has_deny(), "{alg}/{dir:?}: {r:?}");
            }
        }
    }

    #[test]
    fn create_checked_accepts_tuned_and_rejects_corrupt() {
        let arch = sx_aurora();
        let p = ConvProblem::new(1, 32, 32, 8, 8, 3, 3, 1, 1);
        let desc = ConvDesc::new(p, Direction::Fwd, Algorithm::Mbdc);
        assert!(create_checked(&desc, &arch, 1).is_ok());

        // A validator that rejects everything exercises the Rejected path.
        let always_no = |_: &ArchParams, _: &ConvProblem, _: &KernelConfig| Err("nope".to_string());
        match desc.create_validated(&arch, 1, &always_no) {
            Err(UnsupportedReason::Rejected { why }) => assert_eq!(why, "nope"),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn statically_denied_config_skips_replay() {
        let arch = sx_aurora();
        let p = ConvProblem::new(1, 32, 32, 8, 8, 1, 1, 1, 0);
        let mut cfg = lsv_conv::tuning::kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 1);
        cfg.rb.rb_w = 100; // blows the register file; replay would panic
        let r = analyze_kernel(&arch, &p, &cfg);
        assert!(r.fired(RuleId::RegPressure) && r.has_deny());
        assert!(deny_validator(&arch, &p, &cfg).is_err());
    }
}
